package usaas

import (
	"bufio"
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"usersignals/internal/colstore"
	"usersignals/internal/durable"
	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// Store is the service's ingested-signal repository: session telemetry
// (implicit + sparse explicit feedback) and social posts (offline explicit
// feedback). Safe for concurrent use.
//
// Ingest is idempotent per batch ID: the first delivery of a batch is
// applied and its acknowledgement recorded; replays return the recorded
// acknowledgement without mutating the store. Telemetry arrives over the
// same flaky networks the service measures, so clients retry lost
// acknowledgements — dedup here is what turns at-least-once delivery into
// effectively-once ingest.
// Locking. The single store RWMutex of PRs 1–8 is split three ways so the
// ingest hot path serializes only what the contracts require (DESIGN.md
// §15 has the full rules):
//
//   - ingestMu — the SEQUENCING lock: dedup check, WAL frame write, ack
//     prediction, turn-chain registration. Holding it pins WAL append
//     order == apply order (per kind) == ack order.
//   - sessMu — the session shard: sessions, sessGen, session views
//     (rated/daily/eng), and the columnar mirror.
//   - postMu — the post shard: posts, postGen, corpus, post views
//     (speeds/day-hull).
//   - dedupMu — the dedup shard: batches (acks) and pending (unresolved
//     commit tickets). A leaf lock.
//
// Lock order: ingestMu ≻ sessMu ≻ postMu ≻ dedupMu (acquire left to
// right, release any way; skipping levels is fine). Apply workers take
// only their shard lock; readers take one shard RLock after an apply
// fence (pipeline.go); nothing acquires ingestMu while holding any other
// store lock.
type Store struct {
	// ingestMu guards sequencing: seqSessions/seqPosts (predicted
	// post-apply totals, what acks report), the per-kind turn-chain tails,
	// and pipe. The journal append happens under it — that is the
	// write-ahead contract AND the order pin.
	ingestMu    sync.Mutex
	seqSessions int
	seqPosts    int
	sessTail    chan struct{} // done of the last sequenced session job
	postTail    chan struct{} // done of the last sequenced post job
	pipe        *applyPipeline

	// sessFence/postFence mirror the tails for lock-free reader fences
	// (they hold chan struct{}; see fenceSessions).
	sessFence atomic.Value
	postFence atomic.Value

	// applyDelay, when set (tests only), makes every apply sleep that many
	// nanoseconds first — the hook that holds the apply queue observably
	// open for the crash-mid-queue and duplicate-race tests. Atomic so
	// tests may set it while workers run.
	applyDelay atomic.Int64

	sessMu   sync.RWMutex
	sessions rowStore // chunked row blocks (rows.go)
	sessGen  uint64   // bumped on every session apply

	postMu         sync.RWMutex
	posts          []social.Post
	postGen        uint64         // bumped on every post apply
	corpus         *social.Corpus // newest built corpus (may lag postGen)
	corpusGen      uint64         // postGen the corpus was built at
	corpusInFlight chan struct{}  // non-nil while one rebuild runs (singleflight)

	dedupMu sync.RWMutex
	batches map[string]IngestResponse // batch ID → first acknowledgement

	// journal, when non-nil, receives every accepted (non-duplicate)
	// batch under ingestMu BEFORE the batch is sequenced into the apply
	// chain: the write-ahead contract (durable.go). The dedup check runs
	// under the same lock, so duplicates are never journaled — replication
	// depends on follower WALs being byte-identical to the leader's.
	journal batchJournal

	// pending maps a batch ID to its unresolved commit ticket: under group
	// commit the journal returns before the covering fsync, and a duplicate
	// delivery arriving in that window must wait on the SAME fsync as the
	// original — answering it from the dedup table alone would acknowledge
	// a batch that is not durable yet. Entries are removed by finishIngest
	// once the ticket resolves. Guarded by dedupMu.
	pending map[string]*durable.Ticket

	// views holds the incrementally maintained materialized state the
	// query handlers read (views.go). Folded only on non-duplicate
	// batches, so replays never double-count. Session-backed fields
	// (rated, daily, eng) are guarded by sessMu; post-backed fields
	// (speeds, day hull) by postMu.
	views viewState

	// cols is the columnar mirror of sessions (internal/colstore),
	// maintained under the same sessMu fold as the views so it is
	// always generation-consistent with the row store. Lazily created on
	// the first accepted batch; nil when disabled (colsOff) or dropped
	// after a dictionary overflow. The durable store rebuilds it on
	// recovery by replaying batches through the normal ingest path.
	cols    *colstore.Store
	colsOff bool
}

// DisableColumnar drops the columnar mirror and stops maintaining it; every
// analysis serves from the row store. The cmd/usaasd -columnar=false escape
// hatch and DurabilityOptions.DisableColumnar land here.
func (s *Store) DisableColumnar() {
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	s.cols, s.colsOff = nil, true
}

// ColumnarSnapshot captures the mirror for a columnar sweep. ok is false
// when the mirror is disabled, dropped, or has seen no sessions yet.
func (s *Store) ColumnarSnapshot() (colstore.Snapshot, bool) {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	if s.cols == nil {
		return colstore.Snapshot{}, false
	}
	return s.cols.Snapshot(), true
}

// SealColumnar compresses the mirror's open tail partition. Sealing
// otherwise happens on day transitions; tests and benchmarks call this to
// measure the all-sealed shape.
func (s *Store) SealColumnar() {
	s.fenceSessions()
	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if s.cols != nil {
		s.cols.SealTail()
	}
}

// ColumnarStats reports the mirror's resident footprint (zero when the
// mirror is off).
func (s *Store) ColumnarStats() colstore.Stats {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	if s.cols == nil {
		return colstore.Stats{}
	}
	return s.cols.Stats()
}

// appendColumnar folds an accepted batch into the mirror. Caller holds
// sessMu and has already appended recs to s.sessions. The first call
// mirrors the whole session slice, so a mirror enabled on a store restored
// from a snapshot starts complete. A dictionary overflow drops the mirror —
// row ingest is never failed for the mirror's sake.
func (s *Store) appendColumnar(recs []telemetry.SessionRecord) {
	if s.colsOff || len(recs) == 0 {
		return
	}
	if s.cols == nil {
		s.cols = colstore.New()
		// First call: mirror everything already in the row store, block
		// by block (the blocks are contiguous slices).
		snap := s.sessions.snapshot()
		for lo := 0; lo < snap.Len(); lo += rowBlockSize {
			hi := lo + rowBlockSize
			if hi > snap.Len() {
				hi = snap.Len()
			}
			if err := s.cols.Append(snap.Chunk(lo, hi)); err != nil {
				s.cols, s.colsOff = nil, true
				return
			}
		}
		return
	}
	if err := s.cols.Append(recs); err != nil {
		s.cols, s.colsOff = nil, true
	}
}

// AddSessions ingests session records unconditionally (no dedup). The
// error is non-nil only on a durable store whose log append failed.
func (s *Store) AddSessions(recs []telemetry.SessionRecord) error {
	_, _, err := s.AddSessionsBatch("", recs)
	return err
}

// AddSessionsBatch ingests session records under an idempotency key. A
// batch ID already seen returns the original acknowledgement with dup=true
// and leaves the store unchanged; an empty batch ID skips dedup. On a
// durable store a failed log append rejects the batch — nothing is
// applied or acknowledged, so the client's retry is safe.
func (s *Store) AddSessionsBatch(batchID string, recs []telemetry.SessionRecord) (resp IngestResponse, dup bool, err error) {
	return s.addSessionsBatch(batchID, recs, nil)
}

// addSessionsBatch is the synchronous ingest shape: sequence, wait for the
// batch to be applied, then wait for the covering fsync before
// acknowledging. Replay, replication, preloads, and the non-HTTP API all
// come through here, so they observe their own writes immediately.
func (s *Store) addSessionsBatch(batchID string, recs []telemetry.SessionRecord, wire []byte) (resp IngestResponse, dup bool, err error) {
	resp, dup, t, job, err := s.addSessionsBatchAsync(batchID, recs, wire, false)
	if err != nil {
		return IngestResponse{}, dup, err
	}
	if job != nil {
		<-job.done
	}
	if err := s.finishIngest(batchID, t); err != nil {
		return IngestResponse{}, dup, err
	}
	return resp, dup, nil
}

// addSessionsBatchAsync is the sequencing core. wire, when non-nil, is the
// batch's NDJSON wire form as received (the HTTP handler captures the
// request body); the journal logs it verbatim instead of re-encoding,
// which is both cheaper and more faithful — replay parses the same bytes
// the live path did. The journal copies the frame before returning, so
// wire may be pooled by the caller.
//
// Only sequencing happens under ingestMu: dedup, the WAL frame write, the
// predicted-total acknowledgement, and the turn-chain registration. The
// returned job applies the batch outside the lock (worker pool or the
// caller's runJob); its done channel closes when the batch is visible.
// pooled marks recs as owned by the handler slice pool — ownership
// transfers to the job only when job != nil.
//
// The acknowledgement is recorded before the method returns, but the
// caller MUST NOT release it until finishIngest(batchID, t) returns nil:
// under group commit the frame's fsync is still in flight, and the
// sequencing lock is deliberately released while it runs — that window is
// where concurrent batches coalesce into one commit group.
func (s *Store) addSessionsBatchAsync(batchID string, recs []telemetry.SessionRecord, wire []byte, pooled bool) (resp IngestResponse, dup bool, t *durable.Ticket, job *applyJob, err error) {
	s.ingestMu.Lock()
	if batchID != "" {
		s.dedupMu.RLock()
		prev, seen := s.batches[batchID]
		pt := s.pending[batchID]
		s.dedupMu.RUnlock()
		if seen {
			s.ingestMu.Unlock()
			prev.Duplicate = true
			return prev, true, pt, nil, nil
		}
	}
	if s.journal != nil {
		t, err = s.journal.logSessions(batchID, recs, wire)
		if err != nil {
			s.ingestMu.Unlock()
			return IngestResponse{}, false, nil, nil, err
		}
	}
	s.seqSessions += len(recs)
	resp = IngestResponse{
		Accepted:      len(recs),
		TotalSessions: s.seqSessions,
		TotalPosts:    s.seqPosts,
		BatchID:       batchID,
	}
	job = &applyJob{kind: recSessions, recs: recs, prev: s.sessTail, done: make(chan struct{}), pooled: pooled}
	s.sessTail = job.done
	s.sessFence.Store(job.done)
	if batchID != "" {
		s.dedupMu.Lock()
		s.recordBatchLocked(batchID, resp)
		s.trackPendingLocked(batchID, t)
		s.dedupMu.Unlock()
	}
	pipe := s.pipe
	if pipe != nil {
		// Enqueue under ingestMu: queue order = sequence order, and a
		// concurrent StopApplyPipeline (which detaches under this lock)
		// can never close the channel between our load and our send.
		pipe.queue <- job
	}
	s.ingestMu.Unlock()
	if pipe == nil {
		s.runJob(job)
	}
	return resp, false, t, job, nil
}

// AddPosts ingests social posts unconditionally (no dedup). The error is
// non-nil only on a durable store whose log append failed.
func (s *Store) AddPosts(posts []social.Post) error {
	_, _, err := s.AddPostsBatch("", posts)
	return err
}

// AddPostsBatch ingests social posts under an idempotency key, with the
// same replay and durability semantics as AddSessionsBatch.
func (s *Store) AddPostsBatch(batchID string, posts []social.Post) (resp IngestResponse, dup bool, err error) {
	return s.addPostsBatch(batchID, posts, nil)
}

// addPostsBatch is the synchronous post-ingest shape; see addSessionsBatch.
func (s *Store) addPostsBatch(batchID string, posts []social.Post, wire []byte) (resp IngestResponse, dup bool, err error) {
	resp, dup, t, job, err := s.addPostsBatchAsync(batchID, posts, wire, false)
	if err != nil {
		return IngestResponse{}, dup, err
	}
	if job != nil {
		<-job.done
	}
	if err := s.finishIngest(batchID, t); err != nil {
		return IngestResponse{}, dup, err
	}
	return resp, dup, nil
}

// addPostsBatchAsync mirrors addSessionsBatchAsync: wire, when non-nil, is
// the received JSONL body and is journaled verbatim.
func (s *Store) addPostsBatchAsync(batchID string, posts []social.Post, wire []byte, pooled bool) (resp IngestResponse, dup bool, t *durable.Ticket, job *applyJob, err error) {
	// OCR extraction is the expensive part of post ingest; stage it before
	// sequencing. On a duplicate replay the staged work is simply
	// discarded — replays are rare, a stalled sequencer is not.
	staged := extractSpeeds(posts)
	s.ingestMu.Lock()
	if batchID != "" {
		s.dedupMu.RLock()
		prev, seen := s.batches[batchID]
		pt := s.pending[batchID]
		s.dedupMu.RUnlock()
		if seen {
			s.ingestMu.Unlock()
			prev.Duplicate = true
			return prev, true, pt, nil, nil
		}
	}
	if s.journal != nil {
		t, err = s.journal.logPosts(batchID, posts, wire)
		if err != nil {
			s.ingestMu.Unlock()
			return IngestResponse{}, false, nil, nil, err
		}
	}
	s.seqPosts += len(posts)
	resp = IngestResponse{
		Accepted:      len(posts),
		TotalSessions: s.seqSessions,
		TotalPosts:    s.seqPosts,
		BatchID:       batchID,
	}
	job = &applyJob{kind: recPosts, posts: posts, staged: staged, prev: s.postTail, done: make(chan struct{}), pooled: pooled}
	s.postTail = job.done
	s.postFence.Store(job.done)
	if batchID != "" {
		s.dedupMu.Lock()
		s.recordBatchLocked(batchID, resp)
		s.trackPendingLocked(batchID, t)
		s.dedupMu.Unlock()
	}
	pipe := s.pipe
	if pipe != nil {
		pipe.queue <- job
	}
	s.ingestMu.Unlock()
	if pipe == nil {
		s.runJob(job)
	}
	return resp, false, t, job, nil
}

// trackPendingLocked registers an unresolved commit ticket under the batch
// ID so duplicate deliveries arriving before the fsync completes wait on
// it too. Caller holds dedupMu. Resolved tickets (the non-group
// policies) are not tracked — there is nothing left to wait for.
func (s *Store) trackPendingLocked(batchID string, t *durable.Ticket) {
	if batchID == "" || t == nil || t.Resolved() {
		return
	}
	if s.pending == nil {
		s.pending = map[string]*durable.Ticket{}
	}
	s.pending[batchID] = t
}

// finishIngest waits for the commit ticket covering an applied batch and
// reports the fsync outcome — the acknowledgement gate. On success the
// batch's pending entry is cleared. On failure the recorded
// acknowledgement is withdrawn too: the log is poisoned (durable/commit.go)
// and will reject the retry explicitly, and a dedup hit must not answer
// "accepted" for a batch whose durability failed. Nil and pre-resolved
// tickets return immediately, so non-durable stores and the interval/off
// policies pay nothing.
func (s *Store) finishIngest(batchID string, t *durable.Ticket) error {
	if t == nil {
		return nil
	}
	err := t.Wait()
	if batchID != "" {
		s.dedupMu.Lock()
		if s.pending[batchID] == t {
			delete(s.pending, batchID)
		}
		if err != nil {
			delete(s.batches, batchID)
		}
		s.dedupMu.Unlock()
	}
	return err
}

// recordBatchLocked stores a batch's first acknowledgement. Caller holds
// dedupMu.
func (s *Store) recordBatchLocked(batchID string, resp IngestResponse) {
	if batchID == "" {
		return
	}
	if s.batches == nil {
		s.batches = map[string]IngestResponse{}
	}
	s.batches[batchID] = resp
}

// Sessions returns a snapshot copy of the sessions. Read-only consumers
// should prefer Rows (rows.go), which avoids the O(store) copy; this
// accessor remains for callers that mutate the returned records.
func (s *Store) Sessions() []telemetry.SessionRecord {
	rows := s.Rows()
	return rows.AppendTo(make([]telemetry.SessionRecord, 0, rows.Len()))
}

// Corpus returns the posts as a day-indexed corpus (nil when no posts have
// been ingested). The contract is freshness-as-of-call-start: the returned
// corpus covers at least every post applied before the call began. Rebuilds
// are singleflighted — one builder snapshots the posts (an append-only
// slice header copy, not a data copy), indexes OUTSIDE the lock, and
// promotes the result; concurrent callers wait that builder instead of
// racing it. Under sustained post ingest this terminates in at most two
// waits (the in-flight build plus one covering our start generation),
// where the old promote-if-unchanged loop would rebuild forever without
// ever publishing.
func (s *Store) Corpus() *social.Corpus {
	s.fencePosts()
	s.postMu.RLock()
	startGen := s.postGen
	s.postMu.RUnlock()
	for {
		s.postMu.Lock()
		if s.corpus != nil && s.corpusGen >= startGen {
			c := s.corpus
			s.postMu.Unlock()
			return c
		}
		if len(s.posts) == 0 {
			s.postMu.Unlock()
			return nil
		}
		if ch := s.corpusInFlight; ch != nil {
			// Someone is already building; wait them out and re-check —
			// their build may or may not cover startGen.
			s.postMu.Unlock()
			<-ch
			continue
		}
		ch := make(chan struct{})
		s.corpusInFlight = ch
		snapshot := s.posts[:len(s.posts):len(s.posts)] // append-only: header copy is safe
		gen := s.postGen
		s.postMu.Unlock()

		built := buildCorpus(snapshot)

		s.postMu.Lock()
		if gen > s.corpusGen {
			s.corpus = built
			s.corpusGen = gen
		}
		s.corpusInFlight = nil
		s.postMu.Unlock()
		close(ch)
		// gen >= startGen always holds here (we read startGen first), so
		// our own build satisfies the freshness contract directly.
		return built
	}
}

// buildCorpus indexes a post snapshot by day and pre-builds its tokenize-once
// index, so the (parallel) lexing cost is paid during the rebuild — which
// already runs outside the store lock — rather than inside the first query.
func buildCorpus(posts []social.Post) *social.Corpus {
	lo, hi := posts[0].Day, posts[0].Day
	for _, p := range posts {
		if p.Day < lo {
			lo = p.Day
		}
		if p.Day > hi {
			hi = p.Day
		}
	}
	c := social.NewCorpus(timeline.Range{From: lo, To: hi}, posts)
	c.Tokens()
	return c
}

// Counts returns the store sizes.
func (s *Store) Counts() (sessions, posts int) {
	s.fenceSessions()
	s.fencePosts()
	s.sessMu.RLock()
	sessions = s.sessions.n
	s.sessMu.RUnlock()
	s.postMu.RLock()
	posts = len(s.posts)
	s.postMu.RUnlock()
	return sessions, posts
}

// ServerOptions configures the USaaS HTTP service.
type ServerOptions struct {
	// Analyzer defaults to nlp.NewAnalyzer().
	Analyzer *nlp.Analyzer
	// OutageDict defaults to nlp.OutageDictionary().
	OutageDict *nlp.Dictionary
	// News enables peak annotation (optional).
	News *newswire.Index
	// Model enables Fig. 7 launch/subscriber annotations (optional).
	Model *leo.Model
	// MaxBodyBytes caps ingest request bodies (default 64 MiB).
	MaxBodyBytes int64
	// AuthToken, when set, requires every request to carry
	// "Authorization: Bearer <token>" — the §5 "access control for
	// different stakeholders" in its simplest form. Empty disables auth.
	AuthToken string
	// RequestTimeout bounds each request's total handling time; requests
	// exceeding it receive a 503 (default 60s; negative disables).
	RequestTimeout time.Duration
	// MaxInflight caps concurrently handled requests; excess requests are
	// rejected with 429 + Retry-After instead of queueing without bound
	// (0 disables).
	MaxInflight int
	// Admission rate-limits ingest per tenant (admission.go); a zero Rate
	// disables it. Runs outside the inflight limiter, so one tenant's
	// excess is rejected before it can occupy inflight slots.
	Admission AdmissionOptions
	// ResultCacheSize caps the generation-keyed result cache (cache.go):
	// 0 means the default of 256 entries, negative disables caching.
	ResultCacheSize int
	// Ready, when set, gates /v1/readyz: a nil return means the node can
	// serve (recovery replay finished; a follower's lag is under bound),
	// any error is reported with a 503. nil Ready means always ready.
	Ready func() error
}

// Server is the USaaS HTTP service.
type Server struct {
	store *Store
	opts  ServerOptions
	mux   *http.ServeMux
	cache *resultCache // nil when disabled
	admit *admission   // nil when admission control is disabled
}

// NewServer builds a service around a store (a fresh one if nil).
func NewServer(store *Store, opts ServerOptions) *Server {
	if store == nil {
		store = &Store{}
	}
	if opts.Analyzer == nil {
		opts.Analyzer = nlp.NewAnalyzer()
	}
	if opts.OutageDict == nil {
		opts.OutageDict = nlp.OutageDictionary()
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 64 << 20
	}
	if opts.RequestTimeout == 0 {
		opts.RequestTimeout = 60 * time.Second
	}
	s := &Server{store: store, opts: opts, mux: http.NewServeMux()}
	if opts.Admission.Rate > 0 {
		s.admit = newAdmission(opts.Admission)
	}
	if opts.ResultCacheSize >= 0 {
		size := opts.ResultCacheSize
		if size == 0 {
			size = 256
		}
		s.cache = newResultCache(size)
	}
	// Ingest and store-stats endpoints stay uncached; every insight/query
	// endpoint goes through the generation-keyed result cache.
	s.mux.HandleFunc("/v1/sessions", s.handleSessions)
	s.mux.HandleFunc("/v1/posts", s.handlePosts)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/insights/engagement", s.cached(s.handleEngagement))
	s.mux.HandleFunc("/v1/insights/mos", s.cached(s.handleMOS))
	s.mux.HandleFunc("/v1/insights/sentiment", s.cached(s.handleSentiment))
	s.mux.HandleFunc("/v1/insights/peaks", s.cached(s.handlePeaks))
	s.mux.HandleFunc("/v1/insights/outages", s.cached(s.handleOutages))
	s.mux.HandleFunc("/v1/insights/speeds", s.cached(s.handleSpeeds))
	s.mux.HandleFunc("/v1/insights/trends", s.cached(s.handleTrends))
	s.mux.HandleFunc("/v1/query/experience", s.cached(s.handleExperience))
	s.mux.HandleFunc("/v1/insights/confounders", s.cached(s.handleConfounders))
	s.mux.HandleFunc("/v1/advice/traffic-engineering", s.cached(s.handleTEAdvice))
	s.mux.HandleFunc("/v1/advice/deployment", s.cached(s.handleDeploymentAdvice))
	s.mux.HandleFunc("/v1/report", s.cached(s.handleReport))
	s.mux.HandleFunc("/v1/insights/incidents", s.cached(s.handleIncidents))
	// Cluster partial-state exchange (partials.go). The GET side is
	// generation-cached like any insight; the model phase is a POST and
	// stays uncached.
	s.mux.HandleFunc("/v1/partials", s.cached(s.handleGetPartials))
	s.mux.HandleFunc("/v1/partials/model", s.handleModelPartials)
	s.mux.HandleFunc(healthzPath, s.handleHealthz)
	s.mux.HandleFunc(readyzPath, s.handleReadyz)
	return s
}

// Health endpoints. Liveness answers whenever the process can serve HTTP
// at all; readiness distinguishes "up but not yet serving correct answers"
// (recovering, or a follower too far behind the leader) — the state a
// supervisor or load balancer must not route traffic to. Both bypass
// auth, the inflight limiter, and the request timeout (Handler), so a
// saturated or misconfigured node still reports its health.
const (
	healthzPath = "/v1/healthz"
	readyzPath  = "/v1/readyz"
)

// HealthResponse is the body of /v1/healthz and /v1/readyz.
type HealthResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.opts.Ready != nil {
		if err := s.opts.Ready(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "not ready", Error: err.Error()})
			return
		}
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ready"})
}

// IncidentResponse pairs the daily series with detected incidents.
type IncidentResponse struct {
	Engagement string          `json:"engagement"`
	Days       []DayEngagement `json:"days"`
	Incidents  []Incident      `json:"incidents"`
}

func (s *Server) handleIncidents(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	eng, err := parseEngagement(r.URL.Query().Get("engagement"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	f := formOf(r)
	minDrop := f.float("min_drop", 0)
	if f.reject(w) {
		return
	}
	days := s.store.DailyEngagementView()
	if len(days) == 0 {
		writeErr(w, http.StatusNotFound, "no sessions ingested")
		return
	}
	incidents := EngagementIncidents(days, eng, IncidentOptions{MinDrop: minDrop})
	writeJSON(w, http.StatusOK, IncidentResponse{
		Engagement: eng.String(), Days: days, Incidents: incidents,
	})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	rep := BuildReport(s.store, s.opts.Analyzer, s.opts)
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, rep.Render())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// Handler returns the HTTP handler, wrapped (outermost first) with
// bearer-token auth, per-tenant admission control, the inflight limiter,
// and the per-request timeout. Admission sits outside the inflight
// limiter so an over-budget tenant is rejected before occupying a slot.
// The health endpoints short-circuit past all wrappers: probes carry
// no credentials, and a node at its inflight cap or wedged past its
// timeout is exactly the node whose health must still be observable.
func (s *Server) Handler() http.Handler {
	h := http.Handler(s.mux)
	if s.opts.RequestTimeout > 0 {
		h = timeoutHandler(h, s.opts.RequestTimeout)
	}
	if s.opts.MaxInflight > 0 {
		h = inflightLimiter(h, s.opts.MaxInflight)
	}
	if s.admit != nil {
		h = admissionLimiter(h, s.admit)
	}
	if s.opts.AuthToken != "" {
		h = bearerAuth(h, s.opts.AuthToken)
	}
	wrapped := h
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == healthzPath || r.URL.Path == readyzPath {
			s.mux.ServeHTTP(w, r)
			return
		}
		wrapped.ServeHTTP(w, r)
	})
}

// bearerAuth rejects requests without the expected bearer token.
func bearerAuth(next http.Handler, token string) http.Handler {
	want := "Bearer " + token
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte(want)) != 1 {
			writeErr(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// timeoutHandler bounds each request's handling time, answering 503 with a
// deterministic Retry-After when exceeded. A hand-rolled replacement for
// http.TimeoutHandler, which cannot attach headers to its timeout response
// — and without the hint the PR-2 client retries a timed-out (likely
// overloaded) server immediately.
func timeoutHandler(next http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		tw := &timeoutWriter{h: make(http.Header), code: http.StatusOK}
		done := make(chan struct{})
		go func() {
			defer close(done)
			next.ServeHTTP(tw, r.WithContext(ctx))
		}()
		select {
		case <-done:
			tw.mu.Lock()
			dst := w.Header()
			for k, v := range tw.h {
				dst[k] = v
			}
			w.WriteHeader(tw.code)
			_, _ = w.Write(tw.body.Bytes())
			tw.mu.Unlock()
		case <-ctx.Done():
			// The handler goroutine keeps running until it notices the
			// canceled context; it writes into the buffer, which is
			// discarded. Mark it timed out so late writes error like
			// http.TimeoutHandler's do.
			tw.mu.Lock()
			tw.timedOut = true
			tw.mu.Unlock()
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "request timed out")
		}
	})
}

// timeoutWriter buffers a response so it can be forwarded whole (handler
// finished in time) or dropped whole (deadline hit first).
type timeoutWriter struct {
	mu       sync.Mutex
	h        http.Header
	body     bytes.Buffer
	code     int
	wrote    bool
	timedOut bool
}

func (tw *timeoutWriter) Header() http.Header { return tw.h }

func (tw *timeoutWriter) WriteHeader(code int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.wrote || tw.timedOut {
		return
	}
	tw.wrote = true
	tw.code = code
}

func (tw *timeoutWriter) Write(p []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.timedOut {
		return 0, http.ErrHandlerTimeout
	}
	tw.wrote = true
	return tw.body.Write(p)
}

// inflightLimiter sheds load beyond max concurrent requests with a 429 and
// a Retry-After hint, so overload degrades into fast, retryable rejections
// instead of unbounded queueing.
func inflightLimiter(next http.Handler, max int) http.Handler {
	slots := make(chan struct{}, max)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case slots <- struct{}{}:
			defer func() { <-slots }()
			next.ServeHTTP(w, r)
		default:
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "server at capacity (%d in flight)", max)
		}
	})
}

// --- helpers ---

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		writeErr(w, http.StatusMethodNotAllowed, "method %s not allowed; use %s", r.Method, method)
		return false
	}
	return true
}

// queryForm parses typed query parameters, remembering the first
// malformed value so handlers can answer 400 naming the offending key.
// Only an absent or empty parameter falls back to the default —
// "?bins=abc" is a client error, not a synonym for "?bins=".
type queryForm struct {
	q   url.Values
	err error
}

func formOf(r *http.Request) *queryForm { return &queryForm{q: r.URL.Query()} }

func (f *queryForm) int(key string, def int) int {
	v := f.q.Get(key)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		if f.err == nil {
			f.err = fmt.Errorf("query parameter %q: invalid integer %q", key, v)
		}
		return def
	}
	return n
}

func (f *queryForm) float(key string, def float64) float64 {
	v := f.q.Get(key)
	if v == "" {
		return def
	}
	x, err := strconv.ParseFloat(v, 64)
	if err != nil {
		if f.err == nil {
			f.err = fmt.Errorf("query parameter %q: invalid number %q", key, v)
		}
		return def
	}
	return x
}

// reject answers 400 with the first parse error, reporting whether the
// handler should stop.
func (f *queryForm) reject(w http.ResponseWriter) bool {
	if f.err == nil {
		return false
	}
	writeErr(w, http.StatusBadRequest, "%v", f.err)
	return true
}

// --- ingestion ---

// IngestResponse acknowledges an ingest call. A replayed batch returns the
// original acknowledgement with Duplicate set: Accepted reports what the
// first delivery applied, and the totals are those recorded at that time.
type IngestResponse struct {
	Accepted      int    `json:"accepted"`
	TotalSessions int    `json:"total_sessions"`
	TotalPosts    int    `json:"total_posts"`
	BatchID       string `json:"batch_id,omitempty"`
	Duplicate     bool   `json:"duplicate,omitempty"`
}

// isNDJSON reports whether the request body is JSON Lines (one record per
// line) rather than a JSON array.
func isNDJSON(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return strings.Contains(ct, "ndjson") || strings.Contains(ct, "jsonlines") || strings.Contains(ct, "jsonl")
}

// bodyCapture tees an NDJSON request body into a pooled buffer while it
// is parsed, so the durability journal can log the wire bytes verbatim
// instead of re-encoding the batch (float formatting dominates encode
// cost). Replay then parses the exact bytes the live path parsed.
type bodyCapture struct {
	r   io.Reader
	buf *[]byte
}

func newBodyCapture(r io.Reader) *bodyCapture {
	b := ndjsonBufs.Get().(*[]byte)
	*b = (*b)[:0]
	return &bodyCapture{r: r, buf: b}
}

func (c *bodyCapture) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	*c.buf = append(*c.buf, p[:n]...)
	return n, err
}

func (c *bodyCapture) bytes() []byte { return *c.buf }

// release returns the buffer to the pool. The journal copies the frame
// before the ingest call returns, so the bytes are dead by handler exit.
func (c *bodyCapture) release() {
	ndjsonBufs.Put(c.buf)
}

func (s *Server) handleSessions(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var recs []telemetry.SessionRecord
	var wire []byte // NDJSON body as received, journaled verbatim
	pooled := false
	if isNDJSON(r) {
		// Parse into a pooled slice: the hot load-generator path would
		// otherwise allocate (and the GC zero) a fresh record slice per
		// request. Ownership transfers to the applyJob on acceptance; on
		// any other outcome the handler releases it below.
		pooled = true
		recs = getSessionSlice()
		cap := newBodyCapture(body)
		defer cap.release()
		if err := telemetry.ReadJSONL(cap, func(rec *telemetry.SessionRecord) error {
			recs = append(recs, *rec)
			return nil
		}); err != nil {
			putSessionSlice(recs)
			writeErr(w, http.StatusBadRequest, "decoding NDJSON sessions: %v", err)
			return
		}
		wire = cap.bytes()
	} else if err := json.NewDecoder(body).Decode(&recs); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding sessions: %v", err)
		return
	}
	// The async shape releases the sequencing lock before the fsync wait,
	// so concurrent ingest handlers coalesce into shared commit groups —
	// and before the apply, so they overlap the fold work too.
	batchID := r.Header.Get(BatchIDHeader)
	resp, _, t, job, err := s.store.addSessionsBatchAsync(batchID, recs, wire, pooled)
	if pooled && job == nil {
		putSessionSlice(recs) // duplicate or journal error: ownership stays here
	}
	if err == nil {
		err = s.store.finishIngest(batchID, t)
	}
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "persisting sessions: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// scanBufs pools the bufio.Scanner work buffers of the posts handler.
var scanBufs = sync.Pool{New: func() any { return make([]byte, 64*1024) }}

func (s *Server) handlePosts(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var posts []social.Post
	var wire []byte // JSONL body as received, journaled verbatim
	pooled := false
	if isNDJSON(r) {
		pooled = true
		posts = getPostSlice()
		cap := newBodyCapture(body)
		defer cap.release()
		sc := bufio.NewScanner(cap)
		scanBuf := scanBufs.Get().([]byte)
		defer scanBufs.Put(scanBuf) //nolint:staticcheck // []byte header is fine to pool here
		sc.Buffer(scanBuf[:0], 8*1024*1024)
		line := 0
		for sc.Scan() {
			line++
			if len(sc.Bytes()) == 0 {
				continue
			}
			var p social.Post
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				putPostSlice(posts)
				writeErr(w, http.StatusBadRequest, "decoding NDJSON posts line %d: %v", line, err)
				return
			}
			posts = append(posts, p)
		}
		if err := sc.Err(); err != nil {
			putPostSlice(posts)
			writeErr(w, http.StatusBadRequest, "reading NDJSON posts: %v", err)
			return
		}
		wire = cap.bytes()
	} else if err := json.NewDecoder(body).Decode(&posts); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding posts: %v", err)
		return
	}
	batchID := r.Header.Get(BatchIDHeader)
	resp, _, t, job, err := s.store.addPostsBatchAsync(batchID, posts, wire, pooled)
	if pooled && job == nil {
		putPostSlice(posts)
	}
	if err == nil {
		err = s.store.finishIngest(batchID, t)
	}
	if err != nil {
		writeErr(w, http.StatusServiceUnavailable, "persisting posts: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// StatsResponse reports store contents, plus — when the corresponding
// subsystems are enabled — ingest pipeline and admission gauges. The
// optional sections are omitted entirely when off, so the wire bytes of a
// plain store are unchanged (several tests byte-compare /v1/stats across
// stores).
type StatsResponse struct {
	Sessions  int                  `json:"sessions"`
	Posts     int                  `json:"posts"`
	Ingest    *IngestPipelineStats `json:"ingest,omitempty"`
	Admission []TenantAdmission    `json:"admission,omitempty"`
	Cluster   *ClusterStats        `json:"cluster,omitempty"`
}

// ClusterStats is a coordinator's view of its shard fleet, embedded in
// /v1/stats when usaasd runs in coordinator role (internal/cluster fills
// it in; single nodes never set it, so their stats bytes are unchanged).
type ClusterStats struct {
	MapVersion       uint64        `json:"map_version"`
	Shards           []ShardStatus `json:"shards"`
	PartialMerges    uint64        `json:"partial_merges"`
	DegradedSections uint64        `json:"degraded_sections"`
}

// ShardStatus is one shard's health and fan-out gauges.
type ShardStatus struct {
	Name      string     `json:"name"`
	Up        bool       `json:"up"`
	Fanouts   uint64     `json:"fanouts"`
	Errors    uint64     `json:"errors"`
	LatencyMs stats.Hist `json:"latency_ms"`
}

// IngestPipelineStats is the group-commit scheduler's view of ingest: how
// many fsync groups were issued, how well they amortized, and what each
// fsync cost. The load harness asserts against these.
type IngestPipelineStats struct {
	// CommitGroups counts fsyncs issued; CommitBatches counts the batches
	// they covered. MeanGroup = CommitBatches/CommitGroups is the
	// amortization factor.
	CommitGroups  uint64  `json:"commit_groups"`
	CommitBatches uint64  `json:"commit_batches"`
	MeanGroup     float64 `json:"mean_group"`
	MaxGroup      uint64  `json:"max_group"`
	// GroupSizeHist buckets groups by size: 1, 2, 3-4, 5-8, 9-16, 17-32, >32.
	GroupSizeHist []uint64 `json:"group_size_hist"`
	// QueueDepth is the number of batches awaiting their fsync right now.
	QueueDepth int `json:"queue_depth"`
	// Fsync latency over group syncs, milliseconds.
	FsyncCount  uint64  `json:"fsync_count"`
	FsyncMeanMs float64 `json:"fsync_mean_ms"`
	FsyncMaxMs  float64 `json:"fsync_max_ms"`
}

// commitMetricsSource is implemented by DurableStore; the server reaches
// the scheduler through the store's journal hook without the Store type
// needing to know about durability.
type commitMetricsSource interface {
	CommitMetrics() (durable.CommitMetrics, bool)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	sessions, posts := s.store.Counts()
	resp := StatsResponse{Sessions: sessions, Posts: posts}
	if src, ok := s.store.journal.(commitMetricsSource); ok {
		if m, on := src.CommitMetrics(); on {
			ps := &IngestPipelineStats{
				CommitGroups:  m.Groups,
				CommitBatches: m.Batches,
				MaxGroup:      m.MaxGroup,
				GroupSizeHist: append([]uint64(nil), m.GroupSizeHist[:]...),
				QueueDepth:    m.QueueDepth,
				FsyncCount:    m.FsyncCount,
				FsyncMaxMs:    float64(m.FsyncMaxNs) / 1e6,
			}
			if m.Groups > 0 {
				ps.MeanGroup = float64(m.Batches) / float64(m.Groups)
			}
			if m.FsyncCount > 0 {
				ps.FsyncMeanMs = float64(m.FsyncTotalNs) / float64(m.FsyncCount) / 1e6
			}
			resp.Ingest = ps
		}
	}
	if s.admit != nil {
		resp.Admission = s.admit.snapshot()
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- insights ---

// zeroNaNs copies a series replacing NaN with 0; consumers must treat
// Count[i] == 0 bins as "no data" (documented on EngagementResponse).
func zeroNaNs(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if !math.IsNaN(x) {
			out[i] = x
		}
	}
	return out
}

// EngagementResponse is a dose-response curve. Bins with Count == 0 carry
// no data; their Y and Normalized entries are zeroed placeholders.
type EngagementResponse struct {
	Metric     string    `json:"metric"`
	Engagement string    `json:"engagement"`
	X          []float64 `json:"x"`
	Y          []float64 `json:"y"`
	Normalized []float64 `json:"normalized"`
	Count      []int     `json:"count"`
}

func parseMetric(name string) (telemetry.Metric, error) {
	for m := telemetry.LatencyMean; m <= telemetry.BandwidthP95; m++ {
		if m.String() == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("unknown metric %q", name)
}

func parseEngagement(name string) (telemetry.Engagement, error) {
	for _, e := range telemetry.Engagements() {
		if e.String() == name {
			return e, nil
		}
	}
	return 0, fmt.Errorf("unknown engagement %q", name)
}

func (s *Server) handleEngagement(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	metric, err := parseMetric(r.URL.Query().Get("metric"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	eng, err := parseEngagement(r.URL.Query().Get("engagement"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	f := formOf(r)
	lo := f.float("lo", 0)
	hi := f.float("hi", 300)
	bins := f.int("bins", 10)
	if f.reject(w) {
		return
	}
	if hi <= lo || bins < 1 || bins > 1000 {
		writeErr(w, http.StatusBadRequest, "invalid binning lo=%v hi=%v bins=%d", lo, hi, bins)
		return
	}
	series := s.store.DoseResponseSeries(metric, eng, stats.NewBinner(lo, hi, bins), r.URL.Query().Get("isp"))
	norm := Normalize100(series)
	writeJSON(w, http.StatusOK, EngagementResponse{
		Metric:     metric.String(),
		Engagement: eng.String(),
		X:          series.X,
		Y:          zeroNaNs(series.Y),
		Normalized: zeroNaNs(norm.Y),
		Count:      series.Count,
	})
}

// MOSResponse carries the Fig. 4 correlations and the predictor evaluation.
type MOSResponse struct {
	Correlations []MOSCorrelation `json:"correlations"`
	Predictor    *PredictorEval   `json:"predictor,omitempty"`
}

// MOSCorrelation is the wire form of EngagementMOS.
type MOSCorrelation struct {
	Engagement    string  `json:"engagement"`
	Pearson       float64 `json:"pearson"`
	Spearman      float64 `json:"spearman"`
	RatedSessions int     `json:"rated_sessions"`
}

func (s *Server) handleMOS(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	bins := f.int("bins", 10)
	if f.reject(w) {
		return
	}
	rated, total := s.store.RatedSessions()
	report, err := mosReportRated(rated, bins, nil)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	resp := MOSResponse{}
	for _, em := range report {
		resp.Correlations = append(resp.Correlations, MOSCorrelation{
			Engagement:    em.Engagement.String(),
			Pearson:       em.Pearson,
			Spearman:      em.Spearman,
			RatedSessions: em.RatedSessions,
		})
	}
	if eval, err := evaluateMOSPredictorRated(rated, total, 0.7, 1.0); err == nil {
		resp.Predictor = &eval
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) corpusOr404(w http.ResponseWriter) *social.Corpus {
	c := s.store.Corpus()
	if c == nil {
		writeErr(w, http.StatusNotFound, "no posts ingested")
		return nil
	}
	return c
}

func (s *Server) handleSentiment(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	c := s.corpusOr404(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, DailySentiment(c, s.opts.Analyzer))
}

func (s *Server) handlePeaks(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	k := f.int("k", 3)
	if f.reject(w) {
		return
	}
	if k < 1 || k > 50 {
		writeErr(w, http.StatusBadRequest, "k out of range")
		return
	}
	c := s.corpusOr404(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, AnnotatePeaks(c, s.opts.Analyzer, s.opts.News, k))
}

func (s *Server) handleOutages(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	threshold := f.int("threshold", 0)
	if f.reject(w) {
		return
	}
	c := s.corpusOr404(w)
	if c == nil {
		return
	}
	series := OutageKeywordSeries(c, s.opts.Analyzer, s.opts.OutageDict, true)
	if threshold > 0 {
		writeJSON(w, http.StatusOK, AlertsFromSeries(series, threshold))
		return
	}
	writeJSON(w, http.StatusOK, series)
}

func (s *Server) handleSpeeds(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	months, ok := s.store.monthlySpeedsView(s.opts.Analyzer, s.opts.Model, 1)
	if !ok {
		writeErr(w, http.StatusNotFound, "no posts ingested")
		return
	}
	writeJSON(w, http.StatusOK, months)
}

func (s *Server) handleTrends(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	c := s.corpusOr404(w)
	if c == nil {
		return
	}
	writeJSON(w, http.StatusOK, MineTrends(c, s.opts.Analyzer, TrendOptions{}))
}

func (s *Server) handleConfounders(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	eng, err := parseEngagement(r.URL.Query().Get("engagement"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The day-partial fold the coordinator runs over shard partials, so a
	// single node and a cluster compute the identical answer.
	effects, err := assembleConfounders(confounderDayPartials(s.store.Rows(), eng))
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, effects)
}

func (s *Server) handleTEAdvice(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	rows := s.store.Rows()
	if rows.Len() == 0 {
		writeErr(w, http.StatusUnprocessableEntity, "usaas: no sessions to advise on")
		return
	}
	rated, _ := s.store.RatedSessions()
	p, err := TrainMOSPredictor(rated, 1.0)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, "usaas: traffic-engineering advisor: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, assembleTE(rows.Len(), teDayPartials(p, rows)))
}

func (s *Server) handleDeploymentAdvice(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	f := formOf(r)
	from := timeline.Day(f.int("from", int(timeline.Date(2022, 6, 1))))
	horizon := timeline.Day(f.int("horizon", int(timeline.Date(2022, 12, 1))))
	maxExtra := f.int("max", 8)
	sats := f.int("sats", 50)
	target := f.float("target", 0)
	if f.reject(w) {
		return
	}
	if s.opts.Model == nil {
		writeErr(w, http.StatusNotFound, "no constellation model configured")
		return
	}
	advice, err := AdviseDeployment(s.opts.Model, from, horizon, maxExtra, sats, target)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, advice)
}

// ExperienceResponse answers the §5 cross-source query: how users of one
// access network experience the conferencing service, fused from implicit
// actions, sparse surveys, the trained predictor, and social sentiment.
type ExperienceResponse struct {
	ISP            string  `json:"isp"`
	Sessions       int     `json:"sessions"`
	MeanPresence   float64 `json:"mean_presence_pct"`
	MeanCamOn      float64 `json:"mean_cam_on_pct"`
	MeanMicOn      float64 `json:"mean_mic_on_pct"`
	SurveyedMOS    float64 `json:"surveyed_mos"`
	SurveyedCount  int     `json:"surveyed_count"`
	PredictedMOS   float64 `json:"predicted_mos"`
	SocialPosRatio float64 `json:"social_pos_ratio"`
	OutageMentions int     `json:"outage_mentions"`
}

func (s *Server) handleExperience(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	isp := r.URL.Query().Get("isp")
	if isp == "" {
		writeErr(w, http.StatusBadRequest, "isp parameter required")
		return
	}
	// The day-partial fold the coordinator runs over shard partials: per-day
	// engagement accumulators merged ascending, ratings as exact integer
	// sums, and predicted MOS from a model trained on the day-major rated
	// subsequence of the full population (engagement generalizes across
	// access networks).
	part := s.experiencePartial(isp)
	if part.Sessions == 0 {
		writeErr(w, http.StatusNotFound, "no sessions for isp %q", isp)
		return
	}
	var predicted [][]DayOnlinePartial
	rated, _ := s.store.RatedSessions()
	if p, err := TrainMOSPredictor(rated, 1.0); err == nil {
		predicted = append(predicted, predictedDayPartials(p, s.store.Rows(), isp))
	}
	writeJSON(w, http.StatusOK, MergeExperience(isp, []*ExperiencePartial{part}, predicted))
}

// handleGetPartials serves the cluster partial-state exchange (partials.go):
// the mergeable per-day accumulator state for the requested sections.
// Answers are generation-cached like any insight.
func (s *Server) handleGetPartials(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query()
	sections := ParseSections(q.Get("sections"))
	if len(sections) == 0 {
		writeErr(w, http.StatusBadRequest, "sections parameter required")
		return
	}
	var doseKey *engViewKey
	confEng := telemetry.Presence
	for _, section := range sections {
		switch section {
		case SectionDose:
			metric, err := parseMetric(q.Get("metric"))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			eng, err := parseEngagement(q.Get("engagement"))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			f := formOf(r)
			lo := f.float("lo", 0)
			hi := f.float("hi", 300)
			bins := f.int("bins", 10)
			if f.reject(w) {
				return
			}
			if hi <= lo || bins < 1 || bins > 1000 {
				writeErr(w, http.StatusBadRequest, "invalid binning lo=%v hi=%v bins=%d", lo, hi, bins)
				return
			}
			doseKey = &engViewKey{metric: metric, eng: eng, b: stats.NewBinner(lo, hi, bins), isp: q.Get("isp")}
		case SectionConfounders:
			eng, err := parseEngagement(q.Get("engagement"))
			if err != nil {
				writeErr(w, http.StatusBadRequest, "%v", err)
				return
			}
			confEng = eng
		}
	}
	out, err := s.CollectPartials(sections, doseKey, confEng, q.Get("isp"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// handleModelPartials serves the model phase of two-phase cluster queries:
// the coordinator POSTs the canonical trained model and the shard answers
// with per-day partials computed under it. POST, so never cached.
func (s *Server) handleModelPartials(w http.ResponseWriter, r *http.Request) {
	if !s.requireMethod(w, r, http.MethodPost) {
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req ModelPartialsRequest
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "decoding model request: %v", err)
		return
	}
	out, err := s.CollectModelPartials(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}
