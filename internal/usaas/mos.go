package usaas

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// EngagementMOS is the Fig. 4 analysis: for sessions with explicit ratings,
// mean MOS as a function of normalized engagement, plus rank correlations.
type EngagementMOS struct {
	Engagement telemetry.Engagement
	// Series is mean rating per normalized-engagement bin (x in [0, 100]).
	Series stats.BinnedSeries
	// Pearson and Spearman correlate raw engagement with ratings across
	// the rated sessions.
	Pearson  float64
	Spearman float64
	// RatedSessions is the sample size (the paper's point: it is tiny
	// compared with the dataset).
	RatedSessions int
}

// ratedOnly extracts the rated subsequence in day-major order: ascending by
// calendar day of session start, arrival order within a day (the sort is
// stable). Day-major is the cluster's canonical order — each day's sessions
// live wholly on one shard, so concatenating shard subsequences ascending by
// day reproduces exactly this sequence — and every rated-session consumer
// (correlations, train/test splits, ridge fits) reads it, which is what
// makes a scatter-gathered answer byte-identical to a single store's.
func ratedOnly(records []telemetry.SessionRecord) []telemetry.SessionRecord {
	var rated []telemetry.SessionRecord
	for i := range records {
		if records[i].Rated {
			rated = append(rated, records[i])
		}
	}
	sortRatedDayMajor(rated)
	return rated
}

// sortRatedDayMajor orders rated records ascending by start day, preserving
// arrival order within each day.
func sortRatedDayMajor(rated []telemetry.SessionRecord) {
	sort.SliceStable(rated, func(i, j int) bool {
		return timeline.DayOf(rated[i].Start) < timeline.DayOf(rated[j].Start)
	})
}

// MOSByEngagement computes the Fig. 4 relation for one engagement metric.
func MOSByEngagement(records []telemetry.SessionRecord, eng telemetry.Engagement, nBins int, filter telemetry.Filter) (EngagementMOS, error) {
	return mosByEngagementRated(ratedOnly(records), eng, nBins, filter)
}

// mosByEngagementRated is MOSByEngagement over a pre-extracted rated
// subsequence (as the store's view maintains), avoiding the full-store
// scan on the query path.
func mosByEngagementRated(rated []telemetry.SessionRecord, eng telemetry.Engagement, nBins int, filter telemetry.Filter) (EngagementMOS, error) {
	if nBins < 2 {
		nBins = 10
	}
	var xs, ys []float64
	for i := range rated {
		r := &rated[i]
		if filter != nil && !filter(r) {
			continue
		}
		xs = append(xs, r.EngagementOf(eng))
		ys = append(ys, float64(r.Rating))
	}
	out := EngagementMOS{Engagement: eng, RatedSessions: len(xs)}
	if len(xs) < 10 {
		return out, fmt.Errorf("usaas: only %d rated sessions; need at least 10", len(xs))
	}
	b := stats.NewBinner(0, 100.0001, nBins) // engagement is a percentage
	series, err := stats.BinMeans(b, xs, ys)
	if err != nil {
		return out, err
	}
	out.Series = series
	out.Pearson, _ = stats.Pearson(xs, ys)
	out.Spearman, _ = stats.Spearman(xs, ys)
	return out, nil
}

// MOSReport runs Fig. 4 for all engagement metrics.
func MOSReport(records []telemetry.SessionRecord, nBins int, filter telemetry.Filter) ([]EngagementMOS, error) {
	return mosReportRated(ratedOnly(records), nBins, filter)
}

// mosReportRated is MOSReport over a pre-extracted rated subsequence.
func mosReportRated(rated []telemetry.SessionRecord, nBins int, filter telemetry.Filter) ([]EngagementMOS, error) {
	var out []EngagementMOS
	for _, eng := range telemetry.Engagements() {
		em, err := mosByEngagementRated(rated, eng, nBins, filter)
		if err != nil {
			return nil, err
		}
		out = append(out, em)
	}
	return out, nil
}

// MOSPredictor is the §5 model: predict a session's rating from its
// engagement metrics and network aggregates, so that every session — not
// just the 0.1–1% surveyed — gets a quality estimate.
type MOSPredictor struct {
	model *stats.LinearModel
}

// FeatureSet selects which signals feed the predictor — the §5 ablation
// ("predict MOS scores from user engagement and network conditions"):
// either family alone, or both.
type FeatureSet int

// Feature sets.
const (
	FeaturesCombined FeatureSet = iota
	FeaturesEngagementOnly
	FeaturesNetworkOnly
)

// String names the feature set.
func (f FeatureSet) String() string {
	switch f {
	case FeaturesEngagementOnly:
		return "engagement-only"
	case FeaturesNetworkOnly:
		return "network-only"
	default:
		return "combined"
	}
}

// featuresFor builds the feature vector for a set.
func featuresFor(r *telemetry.SessionRecord, set FeatureSet) []float64 {
	eng := []float64{r.PresencePct, r.CamOnPct, r.MicOnPct}
	net := []float64{r.Net.LatencyMean, r.Net.LossMean, r.Net.JitterMean, r.Net.BWMean}
	switch set {
	case FeaturesEngagementOnly:
		return eng
	case FeaturesNetworkOnly:
		return net
	default:
		return append(eng, net...)
	}
}

// predictorFeatures builds the default (combined) feature vector.
func predictorFeatures(r *telemetry.SessionRecord) []float64 {
	return featuresFor(r, FeaturesCombined)
}

// FeatureSetMAE evaluates held-out ridge MAE for one feature set (70/30
// chronological split of the rated sessions).
func FeatureSetMAE(records []telemetry.SessionRecord, set FeatureSet, lambda float64) (float64, error) {
	rated := ratedOnly(records)
	if len(rated) < 20 {
		return 0, fmt.Errorf("usaas: %d rated sessions; need at least 20", len(rated))
	}
	cut := int(0.7 * float64(len(rated)))
	train, test := rated[:cut], rated[cut:]
	X := make([][]float64, len(train))
	y := make([]float64, len(train))
	for i := range train {
		X[i] = featuresFor(&train[i], set)
		y[i] = float64(train[i].Rating)
	}
	m, err := stats.FitRidge(X, y, lambda)
	if err != nil {
		return 0, fmt.Errorf("usaas: feature-set %v: %w", set, err)
	}
	var sum float64
	for i := range test {
		pred := m.Predict(featuresFor(&test[i], set))
		if pred < 1 {
			pred = 1
		}
		if pred > 5 {
			pred = 5
		}
		sum += math.Abs(pred - float64(test[i].Rating))
	}
	return sum / float64(len(test)), nil
}

// ErrNoRatings is returned when the training set has no rated sessions.
var ErrNoRatings = errors.New("usaas: no rated sessions to train on")

// TrainMOSPredictor fits a ridge regression on the rated subset.
func TrainMOSPredictor(records []telemetry.SessionRecord, lambda float64) (*MOSPredictor, error) {
	var X [][]float64
	var y []float64
	for i := range records {
		r := &records[i]
		if !r.Rated {
			continue
		}
		X = append(X, predictorFeatures(r))
		y = append(y, float64(r.Rating))
	}
	if len(X) == 0 {
		return nil, ErrNoRatings
	}
	m, err := stats.FitRidge(X, y, lambda)
	if err != nil {
		return nil, fmt.Errorf("usaas: training MOS predictor: %w", err)
	}
	return &MOSPredictor{model: m}, nil
}

// Model exposes the fitted linear model for transport: the coordinator
// trains once on the gathered rated sessions and ships the coefficients to
// every shard, so per-shard predictions use the identical model (Predict
// clamps, so shipping predictions' inputs — not re-deriving models — is the
// only way shard math matches single-store math).
func (p *MOSPredictor) Model() *stats.LinearModel { return p.model }

// NewMOSPredictorFromModel wraps shipped coefficients back into a predictor.
func NewMOSPredictorFromModel(m *stats.LinearModel) *MOSPredictor {
	return &MOSPredictor{model: m}
}

// Predict estimates the 1–5 rating for one session, clamped to the scale.
func (p *MOSPredictor) Predict(r *telemetry.SessionRecord) float64 {
	v := p.model.Predict(predictorFeatures(r))
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}

// R2 returns the training-set coefficient of determination.
func (p *MOSPredictor) R2() float64 { return p.model.R2 }

// MOSTree is the non-linear alternative predictor: a CART regression tree
// over the same features, which can represent the knees and plateaus the
// dose-response curves show.
type MOSTree struct {
	tree *stats.RegressionTree
}

// TrainMOSTree fits a regression tree on the rated subset.
func TrainMOSTree(records []telemetry.SessionRecord, opts stats.TreeOptions) (*MOSTree, error) {
	var X [][]float64
	var y []float64
	for i := range records {
		r := &records[i]
		if !r.Rated {
			continue
		}
		X = append(X, predictorFeatures(r))
		y = append(y, float64(r.Rating))
	}
	if len(X) == 0 {
		return nil, ErrNoRatings
	}
	t, err := stats.FitTree(X, y, opts)
	if err != nil {
		return nil, fmt.Errorf("usaas: training MOS tree: %w", err)
	}
	return &MOSTree{tree: t}, nil
}

// Predict estimates the 1–5 rating for one session, clamped to the scale.
func (p *MOSTree) Predict(r *telemetry.SessionRecord) float64 {
	v := p.tree.Predict(predictorFeatures(r))
	if v < 1 {
		return 1
	}
	if v > 5 {
		return 5
	}
	return v
}

// PredictorEval compares the predictors against the survey-only status quo.
type PredictorEval struct {
	TrainSessions int
	TestSessions  int
	// MAE of the ridge predictor on held-out rated sessions, versus the
	// constant mean-rating baseline and the regression-tree alternative.
	PredictorMAE float64
	BaselineMAE  float64
	TreeMAE      float64
	// Coverage: fraction of all sessions with a quality estimate under
	// each approach — the paper's core argument in one number.
	SurveyCoverage    float64
	PredictorCoverage float64
}

// EvaluateMOSPredictor trains on the first trainFrac of rated sessions and
// evaluates on the rest.
func EvaluateMOSPredictor(records []telemetry.SessionRecord, trainFrac, lambda float64) (PredictorEval, error) {
	return evaluateMOSPredictorRated(ratedOnly(records), len(records), trainFrac, lambda)
}

// evaluateMOSPredictorRated is EvaluateMOSPredictor over a pre-extracted
// rated subsequence; totalSessions sizes the survey-coverage denominator.
func evaluateMOSPredictorRated(rated []telemetry.SessionRecord, totalSessions int, trainFrac, lambda float64) (PredictorEval, error) {
	if trainFrac <= 0 || trainFrac >= 1 {
		trainFrac = 0.7
	}
	var eval PredictorEval
	if len(rated) < 20 {
		return eval, fmt.Errorf("usaas: %d rated sessions; need at least 20 for train/test", len(rated))
	}
	cut := int(trainFrac * float64(len(rated)))
	train, test := rated[:cut], rated[cut:]
	eval.TrainSessions, eval.TestSessions = len(train), len(test)

	p, err := TrainMOSPredictor(train, lambda)
	if err != nil {
		return eval, err
	}
	tree, err := TrainMOSTree(train, stats.TreeOptions{})
	if err != nil {
		return eval, err
	}
	meanRating := 0.0
	for i := range train {
		meanRating += float64(train[i].Rating)
	}
	meanRating /= float64(len(train))

	var sumPred, sumBase, sumTree float64
	for i := range test {
		r := &test[i]
		sumPred += math.Abs(p.Predict(r) - float64(r.Rating))
		sumBase += math.Abs(meanRating - float64(r.Rating))
		sumTree += math.Abs(tree.Predict(r) - float64(r.Rating))
	}
	eval.PredictorMAE = sumPred / float64(len(test))
	eval.BaselineMAE = sumBase / float64(len(test))
	eval.TreeMAE = sumTree / float64(len(test))
	if totalSessions > 0 {
		eval.SurveyCoverage = float64(len(rated)) / float64(totalSessions)
	}
	eval.PredictorCoverage = 1 // engagement exists for every session
	return eval, nil
}
