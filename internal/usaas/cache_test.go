package usaas

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"usersignals/internal/telemetry"
)

// fetchBody GETs a URL and returns the body (shared by the view equivalence
// tests).
func fetchBody(t *testing.T, ctx context.Context, url string) string {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// cacheTestServer builds a server over a small ingested store.
func cacheTestServer(t *testing.T, opts ServerOptions) (*Server, *httptest.Server, []telemetry.SessionRecord) {
	t.Helper()
	recs := mixDataset(t)
	srv := NewServer(nil, opts)
	srv.store.AddSessions(recs)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, recs
}

// TestCacheGenerationInvalidation: a repeated query hits the cache; an
// ingest bumps the generation, so the same query misses and reflects the new
// data.
func TestCacheGenerationInvalidation(t *testing.T) {
	srv, ts, recs := cacheTestServer(t, ServerOptions{})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	url := ts.URL + "/v1/insights/engagement?metric=latency-mean-ms&engagement=presence&lo=0&hi=300&bins=8"

	cold := fetchBody(t, ctx, url)
	warm := fetchBody(t, ctx, url)
	if cold != warm {
		t.Fatal("warm response differs from cold")
	}
	m := srv.CacheMetrics()
	if m.Misses != 1 || m.Hits != 1 {
		t.Fatalf("metrics after warm read = %+v, want 1 miss + 1 hit", m)
	}

	// Ingest more sessions: the generation moves and the cache must not
	// serve the stale body.
	srv.store.AddSessions(recs[:100])
	fresh := fetchBody(t, ctx, url)
	if fresh == cold {
		t.Fatal("response unchanged after ingest; cache served stale bytes")
	}
	m = srv.CacheMetrics()
	if m.Misses != 2 {
		t.Fatalf("metrics after invalidation = %+v, want 2 misses", m)
	}
	// The fresh body itself is now cached again.
	if again := fetchBody(t, ctx, url); again != fresh {
		t.Fatal("post-ingest warm response differs")
	}
}

// TestCacheSingleflightCollapse: concurrent identical queries produce one
// computation; followers wait and replay the leader's bytes.
func TestCacheSingleflightCollapse(t *testing.T) {
	srv := NewServer(nil, ServerOptions{})
	var computations atomic.Int64
	release := make(chan struct{})
	handler := srv.cached(func(w http.ResponseWriter, r *http.Request) {
		n := computations.Add(1) // leader-only: one flight per key
		<-release
		writeJSON(w, http.StatusOK, map[string]int64{"n": n})
	})

	ts := httptest.NewServer(handler)
	defer ts.Close()

	const followers = 8
	bodies := make([]string, followers)
	var wg sync.WaitGroup
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			bodies[i] = fetchBody(t, ctx, ts.URL+"/v1/x?q=1")
		}(i)
	}
	// Wait until the leader's flight is registered and followers queue up,
	// then let the leader finish.
	deadline := time.Now().Add(30 * time.Second)
	for srv.cache.inflight() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no flight registered")
		}
		time.Sleep(time.Millisecond)
	}
	for srv.CacheMetrics().Collapsed < followers-1 {
		if time.Now().After(deadline) {
			break // some followers may have raced ahead to cache hits
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computations.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
	for i := 1; i < followers; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("follower %d got different bytes", i)
		}
	}
	m := srv.CacheMetrics()
	if m.Misses != 1 {
		t.Fatalf("metrics = %+v, want exactly 1 miss", m)
	}
	if m.Collapsed+m.Hits != followers-1 {
		t.Fatalf("metrics = %+v, want %d collapsed+hits", m, followers-1)
	}
	if srv.cache.inflight() != 0 {
		t.Fatal("flight leaked")
	}
}

// TestCacheDisabled: a negative ResultCacheSize turns caching off entirely.
func TestCacheDisabled(t *testing.T) {
	srv, ts, _ := cacheTestServer(t, ServerOptions{ResultCacheSize: -1})
	if srv.cache != nil {
		t.Fatal("cache built despite ResultCacheSize < 0")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	url := ts.URL + "/v1/insights/mos"
	a := fetchBody(t, ctx, url)
	b := fetchBody(t, ctx, url)
	if a != b {
		t.Fatal("uncached responses diverge")
	}
	if m := srv.CacheMetrics(); m != (CacheMetrics{}) {
		t.Fatalf("disabled cache reported metrics %+v", m)
	}
}

// TestCacheErrorResponsesNotCached: a 5xx body must not stick around until
// the next ingest.
func TestCacheErrorResponsesNotCached(t *testing.T) {
	srv := NewServer(nil, ServerOptions{})
	var fail atomic.Bool
	fail.Store(true)
	handler := srv.cached(func(w http.ResponseWriter, r *http.Request) {
		if fail.Load() {
			writeErr(w, http.StatusInternalServerError, "transient")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"ok": "yes"})
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first := fetchBody(t, ctx, ts.URL+"/v1/x")
	fail.Store(false)
	second := fetchBody(t, ctx, ts.URL+"/v1/x")
	if first == second {
		t.Fatal("500 response was cached")
	}
	// 404s (e.g. "no posts ingested") are cacheable: same generation, same
	// answer.
	third := fetchBody(t, ctx, ts.URL+"/v1/x")
	if third != second {
		t.Fatal("successful response was not cached")
	}
}

// TestCacheEviction: the FIFO cap holds and evictions are counted.
func TestCacheEviction(t *testing.T) {
	srv := NewServer(nil, ServerOptions{ResultCacheSize: 2})
	handler := srv.cached(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, r.URL.RawQuery)
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	for _, q := range []string{"a", "b", "c"} {
		fetchBody(t, ctx, ts.URL+"/v1/x?q="+q)
	}
	m := srv.CacheMetrics()
	if m.Entries != 2 || m.Evictions != 1 {
		t.Fatalf("metrics = %+v, want 2 entries and 1 eviction", m)
	}
	// Oldest key ("a") was evicted: re-fetching it misses again.
	fetchBody(t, ctx, ts.URL+"/v1/x?q=a")
	if m := srv.CacheMetrics(); m.Misses != 4 {
		t.Fatalf("metrics = %+v, want 4 misses", m)
	}
}
