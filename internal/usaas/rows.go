package usaas

import (
	"usersignals/internal/telemetry"
)

// This file holds the chunked session row store. The PR-9 profile showed
// ~24% of ingest CPU going to growing the flat session slice: every
// doubling reallocates, zeroes, and copies the whole array under sessMu.
// Storing rows in fixed-size blocks makes append allocate one new block
// and copy only the incoming batch — published rows are never moved or
// re-zeroed again, which is also what lets readers hold a Rows snapshot
// while ingest keeps appending.
//
// The block size is an exact multiple of parallel.ChunkSize (2048), so a
// canonical analysis chunk never straddles a block boundary: chunked
// analyses take a contiguous sub-slice per chunk and run the identical
// per-chunk loop the flat slice ran, keeping every result byte-identical
// to the flat layout.

const (
	rowBlockShift = 12
	rowBlockSize  = 1 << rowBlockShift // 4096 = 2 × parallel.ChunkSize
	rowBlockMask  = rowBlockSize - 1
)

type rowBlock [rowBlockSize]telemetry.SessionRecord

// rowStore is the mutable owner, guarded by sessMu. Indexes below n are
// immutable once published: append only writes indexes >= n, and the block
// directory only grows, so a snapshot taken under RLock stays valid (and
// race-free) after the lock is released.
type rowStore struct {
	blocks []*rowBlock
	n      int
}

// append copies recs into the tail block(s), allocating blocks as needed.
// Caller holds sessMu.
func (rs *rowStore) append(recs []telemetry.SessionRecord) {
	for len(recs) > 0 {
		bi, off := rs.n>>rowBlockShift, rs.n&rowBlockMask
		if bi == len(rs.blocks) {
			rs.blocks = append(rs.blocks, new(rowBlock))
		}
		c := copy(rs.blocks[bi][off:], recs)
		rs.n += c
		recs = recs[c:]
	}
}

// snapshot captures an immutable view. Caller holds sessMu (read or write).
func (rs *rowStore) snapshot() Rows {
	return Rows{blocks: rs.blocks, n: rs.n}
}

// Rows is an immutable snapshot of the session rows at some generation:
// a block directory plus a count. Copy-free to take and to hold; records
// are shared with the store and must be treated as read-only.
type Rows struct {
	blocks []*rowBlock
	n      int
}

// Len returns the number of rows in the snapshot.
func (r Rows) Len() int { return r.n }

// At returns the i-th row (read-only).
func (r Rows) At(i int) *telemetry.SessionRecord {
	return &r.blocks[i>>rowBlockShift][i&rowBlockMask]
}

// Chunk returns rows [lo, hi) as a contiguous slice. The range must not
// straddle a block boundary; parallel.Chunks ranges never do, because the
// block size is a multiple of the canonical chunk size.
func (r Rows) Chunk(lo, hi int) []telemetry.SessionRecord {
	if lo >= hi {
		return nil
	}
	if lo>>rowBlockShift != (hi-1)>>rowBlockShift {
		panic("usaas: Rows.Chunk range straddles a block boundary")
	}
	return r.blocks[lo>>rowBlockShift][lo&rowBlockMask : (hi-1)&rowBlockMask+1]
}

// AppendTo materializes the snapshot into dst (flat copy), block by block.
func (r Rows) AppendTo(dst []telemetry.SessionRecord) []telemetry.SessionRecord {
	for lo := 0; lo < r.n; lo += rowBlockSize {
		hi := lo + rowBlockSize
		if hi > r.n {
			hi = r.n
		}
		dst = append(dst, r.blocks[lo>>rowBlockShift][:hi-lo]...)
	}
	return dst
}

// Each calls fn for rows [lo, hi) in order.
func (r Rows) Each(lo, hi int, fn func(*telemetry.SessionRecord)) {
	for i := lo; i < hi; i++ {
		fn(r.At(i))
	}
}

// Rows returns a snapshot of the live session rows, fenced so every batch
// sequenced before the call is visible. This replaces the old
// SessionsShared flat-slice accessor: the snapshot is copy-free and stays
// consistent while ingest appends behind it.
func (s *Store) Rows() Rows {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return s.sessions.snapshot()
}
