package usaas

import (
	"testing"
	"time"

	"usersignals/internal/leo"
	"usersignals/internal/timeline"
)

func TestAdviseTrafficEngineering(t *testing.T) {
	recs := mixDataset(t)
	recos, err := AdviseTrafficEngineering(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recos) != 4 {
		t.Fatalf("recommendations = %d", len(recos))
	}
	// Ranked by total lift, descending.
	for i := 1; i < len(recos); i++ {
		if recos[i].TotalLift > recos[i-1].TotalLift {
			t.Fatalf("not ranked: %+v", recos)
		}
	}
	// The top recommendation must have a positive payoff and a real
	// affected population.
	top := recos[0]
	if top.TotalLift <= 0 {
		t.Fatalf("top recommendation has no payoff: %+v", top)
	}
	if top.AffectedFrac <= 0 || top.AffectedFrac > 1 {
		t.Fatalf("affected fraction %v", top.AffectedFrac)
	}
	// Improving a metric must not be predicted to *hurt* on average.
	for _, r := range recos {
		if r.AffectedFrac > 0.01 && r.MeanMOSLift < -0.05 {
			t.Fatalf("intervention %v predicted harmful: %+v", r.Metric, r)
		}
	}
}

func TestAdviseTrafficEngineeringErrors(t *testing.T) {
	if _, err := AdviseTrafficEngineering(nil); err == nil {
		t.Fatal("empty sessions accepted")
	}
	// Sessions without ratings: predictor cannot train.
	recs := mixDataset(t)
	stripped := append(recs[:0:0], recs...)
	for i := range stripped {
		stripped[i].Rated = false
		stripped[i].Rating = 0
	}
	if _, err := AdviseTrafficEngineering(stripped); err == nil {
		t.Fatal("unrated dataset accepted")
	}
}

func TestAdviseDeployment(t *testing.T) {
	model := leo.NewModel()
	from := timeline.Date(2022, time.June, 1)
	horizon := timeline.Date(2022, time.December, 1)
	advice, err := AdviseDeployment(model, from, horizon, 10, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Scenarios) != 11 {
		t.Fatalf("scenarios = %d", len(advice.Scenarios))
	}
	// More launches ⇒ faster projected speeds, monotonically.
	for i := 1; i < len(advice.Scenarios); i++ {
		if advice.Scenarios[i].ProjectedSpeed <= advice.Scenarios[i-1].ProjectedSpeed {
			t.Fatalf("speed not increasing with launches: %+v", advice.Scenarios)
		}
	}
	// And sentiment improves with them (conditioning notwithstanding,
	// faster-than-expected is good news).
	if advice.Scenarios[10].ProjectedPos <= advice.Scenarios[0].ProjectedPos {
		t.Fatalf("Pos not improving with launches: %v vs %v",
			advice.Scenarios[10].ProjectedPos, advice.Scenarios[0].ProjectedPos)
	}
	// Marginal lift per launch is positive and roughly diminishing.
	lift := advice.LiftCurve()
	if len(lift) != 10 {
		t.Fatalf("lift curve = %v", lift)
	}
	for _, l := range lift {
		if l <= 0 {
			t.Fatalf("non-positive marginal lift: %v", lift)
		}
	}
}

func TestAdviseDeploymentTarget(t *testing.T) {
	model := leo.NewModel()
	from := timeline.Date(2022, time.June, 1)
	horizon := timeline.Date(2022, time.December, 1)
	// Find the Pos achievable with 0 and with 10 launches; a target in
	// between must be met by some intermediate plan.
	advice, err := AdviseDeployment(model, from, horizon, 10, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	lo := advice.Scenarios[0].ProjectedPos
	hi := advice.Scenarios[10].ProjectedPos
	target := (lo + hi) / 2
	advice2, err := AdviseDeployment(model, from, horizon, 10, 50, target)
	if err != nil {
		t.Fatal(err)
	}
	if advice2.LaunchesForTarget <= 0 || advice2.LaunchesForTarget > 10 {
		t.Fatalf("LaunchesForTarget = %d for target %v in (%v, %v)",
			advice2.LaunchesForTarget, target, lo, hi)
	}
	// An unreachable target reports -1.
	advice3, err := AdviseDeployment(model, from, horizon, 2, 50, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if advice3.LaunchesForTarget != -1 {
		t.Fatalf("unreachable target met: %+v", advice3)
	}
}

func TestAdviseDeploymentValidation(t *testing.T) {
	if _, err := AdviseDeployment(nil, 0, 10, 1, 50, 0.5); err == nil {
		t.Fatal("nil model accepted")
	}
	if _, err := AdviseDeployment(leo.NewModel(), 10, 10, 1, 50, 0.5); err == nil {
		t.Fatal("degenerate horizon accepted")
	}
}

func TestWithExtraLaunchesDoesNotMutate(t *testing.T) {
	model := leo.NewModel()
	day := timeline.Date(2022, time.December, 31)
	before := model.ActiveSats(day)
	clone := model.WithExtraLaunches([]leo.Launch{{Day: timeline.Date(2022, time.June, 1), Sats: 500}})
	if model.ActiveSats(day) != before {
		t.Fatal("WithExtraLaunches mutated the original model")
	}
	if clone.ActiveSats(day) <= before {
		t.Fatal("clone did not gain satellites")
	}
}
