package usaas

import (
	"math"
	"sort"

	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/timeline"
)

// This file preserves the pre-tokenize-once reference implementations of the
// §4 text analyses: each scores/lexes raw post text directly with the
// string-based nlp primitives, exactly as the production code did before the
// fused sweep (sweep.go). They exist so the golden tests (sweep_test.go) can
// assert the fused pipeline is byte-identical to them, and so the benchmarks
// (sweep_bench_test.go) can measure the before/after gap.

func dailySentimentNaive(c *social.Corpus, an *nlp.Analyzer) []DaySentiment {
	out := make([]DaySentiment, 0, c.Window.Len())
	c.Window.Days(func(d timeline.Day) {
		ds := DaySentiment{Day: d}
		for _, p := range c.OnDay(d) {
			ds.Posts++
			s := an.Score(p.Text())
			if s.StrongPositive() {
				ds.StrongPos++
			}
			if s.StrongNegative() {
				ds.StrongNeg++
			}
		}
		out = append(out, ds)
	})
	return out
}

func outageKeywordSeriesNaive(c *social.Corpus, an *nlp.Analyzer, dict *nlp.Dictionary, gate bool) []DayKeywords {
	out := make([]DayKeywords, 0, c.Window.Len())
	c.Window.Days(func(d timeline.Day) {
		dk := DayKeywords{Day: d}
		for _, p := range c.OnDay(d) {
			n := dict.Count(p.ThreadText())
			if n == 0 {
				continue
			}
			if gate {
				s := an.Score(p.Text())
				if s.Negative <= s.Positive || s.Negative < 0.3 {
					continue
				}
			}
			dk.Count += n
		}
		out = append(out, dk)
	})
	return out
}

func mineTrendsNaive(c *social.Corpus, an *nlp.Analyzer, opts TrendOptions) []Trend {
	opts = opts.withDefaults()
	terms := map[string]*termDay{}
	c.Window.Days(func(d timeline.Day) {
		for _, p := range c.OnDay(d) {
			w := 1 + math.Log1p(float64(p.Upvotes+p.Comments))
			s := an.Score(p.Text())
			positive := s.Positive > s.Negative
			seen := map[string]bool{}
			record := func(term string) {
				if seen[term] {
					return
				}
				seen[term] = true
				td := terms[term]
				if td == nil {
					td = &termDay{weight: map[timeline.Day]float64{}}
					terms[term] = td
				}
				td.weight[d] += w
				td.total++
				if positive {
					td.pos++
				}
			}
			prev := ""
			for _, tok := range nlp.ContentTokens(p.Text()) {
				stem := nlp.Stem(tok)
				record(stem)
				if opts.Bigrams && prev != "" {
					record(prev + " " + stem)
				}
				prev = stem
			}
		}
	})
	return scanTrends(c.Window, terms, opts)
}

func annotatePeaksNaive(c *social.Corpus, an *nlp.Analyzer, news *newswire.Index, k int) []AnnotatedPeak {
	daily := dailySentimentNaive(c, an)
	series := make([]float64, len(daily))
	for i, d := range daily {
		series[i] = float64(d.Strong())
	}
	peaks := stats.DetectPeaks(series, stats.PeakOptions{Window: 21, MinScore: 4, MinValue: 20, Separation: 5})
	sort.Slice(peaks, func(i, j int) bool { return peaks[i].Value > peaks[j].Value })
	if len(peaks) > k {
		peaks = peaks[:k]
	}

	out := make([]AnnotatedPeak, 0, len(peaks))
	for _, pk := range peaks {
		ds := daily[pk.Index]
		var texts []string
		for _, p := range c.OnDay(ds.Day) {
			texts = append(texts, p.Text())
		}
		top := nlp.WordCloud(texts, 12)
		keywords := make([]string, 0, 3)
		for _, wc := range top {
			if len(keywords) < 3 {
				keywords = append(keywords, wc.Word)
			}
		}
		ap := AnnotatedPeak{
			Day:       ds.Day,
			Strong:    ds.Strong(),
			StrongPos: ds.StrongPos,
			StrongNeg: ds.StrongNeg,
			Positive:  ds.StrongPos >= ds.StrongNeg,
			TopWords:  top,
		}
		if news != nil {
			ap.News = news.Search(keywords, ds.Day, 2)
		}
		out = append(out, ap)
	}
	return out
}

func outageGeographyNaive(c *social.Corpus, an *nlp.Analyzer, dict *nlp.Dictionary, d timeline.Day) map[string]int {
	out := map[string]int{}
	for _, p := range c.OnDay(d) {
		if !dict.Matches(p.ThreadText()) {
			continue
		}
		s := an.Score(p.Text())
		if s.Negative <= s.Positive || s.Negative < 0.3 {
			continue
		}
		out[p.Country]++
	}
	return out
}
