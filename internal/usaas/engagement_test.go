package usaas

import (
	"math"
	"sync"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
)

// sweepDataset generates (and caches) a dataset whose sessions sweep one
// network metric across its figure range while the others stay in the
// control bands — the experimental design behind every Fig. 1 panel.
var sweepCache sync.Map

func sweepDataset(t *testing.T, name string, calls int, configure func(*netsim.Sweep)) []telemetry.SessionRecord {
	t.Helper()
	if recs, ok := sweepCache.Load(name); ok {
		return recs.([]telemetry.SessionRecord)
	}
	sw := netsim.ControlBands()
	configure(&sw)
	opts := conference.Defaults(uint64(len(name))*7919+1, calls)
	opts.Paths = &sw
	opts.SurveyRate = 0.05 // oversample surveys so Fig. 4 has data at test scale
	g, err := conference.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := g.GenerateAll()
	if err != nil {
		t.Fatal(err)
	}
	sweepCache.Store(name, recs)
	return recs
}

func cohortOnly() telemetry.Filter { return telemetry.StudyCohort() }

func TestFig1LatencyPanel(t *testing.T) {
	recs := sweepDataset(t, "latency", 500, func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
	})
	b := stats.NewBinner(0, 300, 10)

	mic, err := DoseResponse(recs, telemetry.LatencyMean, telemetry.MicOn, b, cohortOnly())
	if err != nil {
		t.Fatal(err)
	}
	cam, _ := DoseResponse(recs, telemetry.LatencyMean, telemetry.CamOn, b, cohortOnly())
	pres, _ := DoseResponse(recs, telemetry.LatencyMean, telemetry.Presence, b, cohortOnly())

	micDrop := RelativeDrop(mic)
	camDrop := RelativeDrop(cam)
	presDrop := RelativeDrop(pres)
	if micDrop < 0.15 || micDrop > 0.5 {
		t.Fatalf("Mic On drop over 0→300ms = %v, paper: >25%%", micDrop)
	}
	if camDrop < 0.08 || camDrop > 0.45 {
		t.Fatalf("Cam On drop = %v, paper: ~20%%", camDrop)
	}
	if presDrop < 0.08 || presDrop > 0.45 {
		t.Fatalf("Presence drop = %v, paper: ~20%%", presDrop)
	}
	// Mic On is the steepest responder and its slope flattens after the
	// first half (the 150 ms knee).
	if micDrop <= camDrop {
		t.Fatalf("Mic On (%v) should fall more than Cam On (%v)", micDrop, camDrop)
	}
	first, second := HalfSlopes(mic)
	if !(first < 0) {
		t.Fatalf("Mic On first-half slope %v should be negative", first)
	}
	if math.Abs(first) <= math.Abs(second) {
		t.Fatalf("Mic On should be steeper before 150ms: first %v vs second %v", first, second)
	}
}

func TestFig1LossPanel(t *testing.T) {
	recs := sweepDataset(t, "loss", 500, func(s *netsim.Sweep) {
		s.LossPct = [2]float64{0, 4}
	})
	// Up to 2%: all engagement metrics drop < 10% (mitigation works).
	b2 := stats.NewBinner(0, 2, 8)
	for _, eng := range telemetry.Engagements() {
		s, err := DoseResponse(recs, telemetry.LossMean, eng, b2, cohortOnly())
		if err != nil {
			t.Fatal(err)
		}
		if drop := RelativeDrop(s); drop > 0.10 {
			t.Fatalf("%v drop at 2%% loss = %v, paper: <10%%", eng, drop)
		}
	}
	// Beyond 3%: presence falls noticeably (drop-off).
	b4 := stats.NewBinner(0, 4, 8)
	pres, _ := DoseResponse(recs, telemetry.LossMean, telemetry.Presence, b4, cohortOnly())
	if drop := RelativeDrop(pres); drop < 0.08 {
		t.Fatalf("Presence drop at ~4%% loss = %v, paper: >10%% beyond 3%%", drop)
	}
}

func TestFig1JitterPanel(t *testing.T) {
	recs := sweepDataset(t, "jitter", 500, func(s *netsim.Sweep) {
		s.JitterMs = [2]float64{0, 12}
	})
	b := stats.NewBinner(0, 12, 8)
	cam, err := DoseResponse(recs, telemetry.JitterMean, telemetry.CamOn, b, cohortOnly())
	if err != nil {
		t.Fatal(err)
	}
	if drop := RelativeDrop(cam); drop < 0.12 {
		t.Fatalf("Cam On drop at ~10ms jitter = %v, paper: >15%%", drop)
	}
	// Jitter hits the camera harder than the mic.
	mic, _ := DoseResponse(recs, telemetry.JitterMean, telemetry.MicOn, b, cohortOnly())
	if RelativeDrop(mic) >= RelativeDrop(cam) {
		t.Fatalf("jitter should hit Cam On (%v) harder than Mic On (%v)", RelativeDrop(cam), RelativeDrop(mic))
	}
}

func TestFig1BandwidthPanel(t *testing.T) {
	recs := sweepDataset(t, "bandwidth", 500, func(s *netsim.Sweep) {
		s.BandwidthMbps = [2]float64{0.25, 4}
	})
	b := stats.NewBinner(0.25, 4, 8)
	for _, eng := range telemetry.Engagements() {
		s, err := DoseResponse(recs, telemetry.BandwidthMean, eng, b, cohortOnly())
		if err != nil {
			t.Fatal(err)
		}
		norm := Normalize100(s)
		ne := norm.NonEmpty()
		// Find the bin nearest 1 Mbps and compare with the best.
		for i, x := range ne.X {
			if x >= 0.8 && x <= 1.3 {
				if ne.Y[i] < 92 {
					t.Fatalf("%v at ~1 Mbps = %v%% of best, paper: within 5%%", eng, ne.Y[i])
				}
				break
			}
		}
	}
	// Mic On must be flat across the whole range.
	mic, _ := DoseResponse(recs, telemetry.BandwidthMean, telemetry.MicOn, b, cohortOnly())
	if drop := RelativeDrop(mic); math.Abs(drop) > 0.05 {
		t.Fatalf("Mic On moved %v with bandwidth; paper: no correlation", drop)
	}
}

func TestFig2Compounding(t *testing.T) {
	recs := sweepDataset(t, "compound", 700, func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.LossPct = [2]float64{0, 3.5}
	})
	xb := stats.NewBinner(0, 300, 4)
	yb := stats.NewBinner(0, 3.5, 4)
	g, err := Compounding(recs, telemetry.LatencyMean, telemetry.LossMean, telemetry.Presence, xb, yb, cohortOnly())
	if err != nil {
		t.Fatal(err)
	}
	best, worst, ok := g.BestWorst()
	if !ok {
		t.Fatal("empty grid")
	}
	rel := (best - worst) / best
	if rel < 0.25 {
		t.Fatalf("compounded presence dip = %v, paper: up to ~50%%", rel)
	}
	// The worst cell must be the high-latency, high-loss corner region:
	// its mean must be below either axis-extreme alone.
	cornerHighLat := g.Mean[3][0]
	cornerHighLoss := g.Mean[0][3]
	cornerBoth := g.Mean[3][3]
	if !(cornerBoth < cornerHighLat && cornerBoth < cornerHighLoss) {
		t.Fatalf("compounding not super-additive: both=%v lat=%v loss=%v", cornerBoth, cornerHighLat, cornerHighLoss)
	}
}

func TestFig3Platforms(t *testing.T) {
	recs := sweepDataset(t, "platforms", 700, func(s *netsim.Sweep) {
		s.LossPct = [2]float64{0, 4}
	})
	b := stats.NewBinner(0, 4, 4)
	series, err := ByPlatform(recs, telemetry.LossMean, telemetry.Presence, b, cohortOnly())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) < 4 {
		t.Fatalf("only %d platforms present", len(series))
	}
	// At high loss, mobile presence sits below PC presence.
	lastBin := func(name string) float64 {
		s := series[name].NonEmpty()
		if len(s.Y) == 0 {
			t.Fatalf("platform %s has no data", name)
		}
		return s.Y[len(s.Y)-1]
	}
	pc := lastBin("windows-pc")
	android := lastBin("android-mobile")
	if android >= pc {
		t.Fatalf("Fig 3: android at high loss (%v) should be below windows (%v)", android, pc)
	}
	// And the platforms differ overall (not a single curve).
	if math.Abs(lastBin("mac-pc")-android) < 1e-9 {
		t.Fatal("platforms suspiciously identical")
	}
}

func TestNormalize100(t *testing.T) {
	s := stats.BinnedSeries{X: []float64{1, 2, 3}, Y: []float64{50, 100, 75}, Count: []int{5, 5, 0}}
	n := Normalize100(s)
	if n.Y[0] != 50 || n.Y[1] != 100 {
		t.Fatalf("normalized = %v", n.Y)
	}
	if !math.IsNaN(n.Y[2]) {
		t.Fatalf("empty bin should stay NaN: %v", n.Y[2])
	}
}

func TestRelativeDropDegenerate(t *testing.T) {
	if !math.IsNaN(RelativeDrop(stats.BinnedSeries{})) {
		t.Fatal("empty series should be NaN")
	}
	one := stats.BinnedSeries{X: []float64{1}, Y: []float64{5}, Count: []int{3}}
	if !math.IsNaN(RelativeDrop(one)) {
		t.Fatal("single-bin series should be NaN")
	}
}

func TestHalfSlopesDegenerate(t *testing.T) {
	short := stats.BinnedSeries{X: []float64{1, 2}, Y: []float64{1, 2}, Count: []int{1, 1}}
	f, s := HalfSlopes(short)
	if !math.IsNaN(f) || !math.IsNaN(s) {
		t.Fatal("short series should be NaN")
	}
}
