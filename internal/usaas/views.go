package usaas

import (
	"sort"

	"usersignals/internal/leo"
	"usersignals/internal/nlp"
	"usersignals/internal/ocr"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// This file holds the store's materialized views: mergeable accumulators
// maintained incrementally at ingest time so the query handlers read
// precomputed state instead of re-scanning every session. Views accumulate
// per calendar day — the cluster's partition unit — and serve queries by
// folding the days together strictly ascending, so a view-served series is
// bit-identical to recomputing over a snapshot AND to merging the same days
// gathered from N shards: incrementality, parallelism, and sharding never
// change figure shapes.

// engViewKey identifies one dose-response view: the query parameters that
// select an accumulator. stats.Binner is comparable, so the key can be used
// directly in a map.
type engViewKey struct {
	metric telemetry.Metric
	eng    telemetry.Engagement
	b      stats.Binner
	isp    string // empty = unfiltered
}

// maxEngViews caps how many distinct dose-response parameterizations the
// store materializes; queries beyond the cap still work (they fold a fresh
// accumulator from the snapshot) but are not retained.
const maxEngViews = 64

// engView incrementally maintains DoseResponseDaily's state for one key:
// one bin accumulator per calendar day, each fed in arrival order. folded
// counts every session seen (so a catch-up can resume at an absolute row
// index), while Add is filter-conditional, exactly like the batch scan.
type engView struct {
	key  engViewKey
	mf   func(*telemetry.NetAggregates) float64
	ef   func(*telemetry.SessionRecord) float64
	days dayBins
	// lastDay/lastAcc cache the most recent day's accumulator: ingest is
	// roughly chronological, so most Adds skip the map lookup.
	lastDay timeline.Day
	lastAcc *stats.BinAcc
	folded  int
}

func newEngView(key engViewKey) *engView {
	return &engView{
		key:  key,
		mf:   key.metric.Accessor(),
		ef:   key.eng.Accessor(),
		days: dayBins{},
	}
}

// foldOne absorbs one record.
func (v *engView) foldOne(r *telemetry.SessionRecord, filter telemetry.Filter) {
	v.folded++
	if filter != nil && !filter(r) {
		return
	}
	d := timeline.DayOf(r.Start)
	if v.lastAcc == nil || d != v.lastDay {
		v.lastDay, v.lastAcc = d, v.days.add(d, v.key.b, v.mf(&r.Net), v.ef(r))
		return
	}
	v.lastAcc.Add(v.mf(&r.Net), v.ef(r))
}

func (v *engView) filter() telemetry.Filter {
	if v.key.isp != "" {
		return telemetry.OnISP(v.key.isp)
	}
	return nil
}

// fold absorbs an arrival-ordered batch.
func (v *engView) fold(recs []telemetry.SessionRecord) {
	filter := v.filter()
	for i := range recs {
		v.foldOne(&recs[i], filter)
	}
}

// foldRows absorbs rows [lo, hi) of a snapshot in arrival order.
func (v *engView) foldRows(rows Rows, lo, hi int) {
	filter := v.filter()
	rows.Each(lo, hi, func(r *telemetry.SessionRecord) {
		v.foldOne(r, filter)
	})
}

// series snapshots the view as DoseResponseDaily would produce it: the
// per-day accumulators merged strictly ascending by day.
func (v *engView) series() stats.BinnedSeries {
	return foldDayBins(v.key.b, v.days).Series()
}

// speedObs is one successfully OCR-extracted speed report, recorded at post
// ingest so the Fig. 7 query never re-runs extraction. post indexes the
// store's append-only posts slice (sentiment is scored at query time — the
// store stays analyzer-free).
type speedObs struct {
	day  timeline.Day
	id   uint64
	down float64
	post int
}

// viewState is everything the store maintains incrementally. Session-backed
// fields (rated, daily, eng) are guarded by the store's sessMu; post-backed
// fields (speeds, minDay/maxDay/havePosts) by postMu — the same shard locks
// as the data they are folded from, so view state is always
// generation-consistent with its source shard.
type viewState struct {
	// rated is the rated-session subsequence in day-major order (ascending
	// start day, arrival order within a day — the cluster's canonical
	// order), feeding the MOS paths without a full-store scan. The slice is
	// rebuilt copy-on-write per batch so readers holding the previous slice
	// never observe the re-sort.
	rated []telemetry.SessionRecord
	// daily aggregates engagement by calendar day for incident detection.
	daily map[timeline.Day]*dayAcc
	// eng holds the materialized dose-response accumulators.
	eng map[engViewKey]*engView
	// speeds groups extracted speed observations by month; minDay/maxDay
	// track the post hull (the corpus window).
	speeds         map[timeline.Month][]speedObs
	minDay, maxDay timeline.Day
	havePosts      bool
}

// foldSessions absorbs an accepted (non-duplicate) session batch into every
// session-backed view. Caller holds sessMu.
func (vs *viewState) foldSessions(recs []telemetry.SessionRecord) {
	if vs.daily == nil {
		vs.daily = map[timeline.Day]*dayAcc{}
	}
	var newRated []telemetry.SessionRecord
	for i := range recs {
		r := &recs[i]
		if r.Rated {
			newRated = append(newRated, *r)
		}
		d := timeline.DayOf(r.Start)
		a := vs.daily[d]
		if a == nil {
			a = &dayAcc{}
			vs.daily[d] = a
		}
		a.add(r)
	}
	if len(newRated) > 0 {
		// Copy-on-write day-major merge: the stable sort keeps existing
		// entries (earlier arrivals) ahead of the batch's within each day,
		// which is exactly ratedOnly's order over the full arrival sequence.
		merged := make([]telemetry.SessionRecord, 0, len(vs.rated)+len(newRated))
		merged = append(merged, vs.rated...)
		merged = append(merged, newRated...)
		sortRatedDayMajor(merged)
		vs.rated = merged
	}
	for _, v := range vs.eng {
		v.fold(recs)
	}
}

// pendingObs is an extraction result staged outside the lock: rel is the
// offset within the incoming batch (the final post index is rel + the
// store's pre-append length).
type pendingObs struct {
	rel  int
	day  timeline.Day
	id   uint64
	down float64
}

// extractSpeeds runs the OCR sweep over an incoming post batch. It holds no
// locks — extraction is the expensive part of post ingest and must not
// stall readers — so the caller folds the staged results in under the write
// lock (discarding them if the batch turns out to be a duplicate).
func extractSpeeds(posts []social.Post) []pendingObs {
	var out []pendingObs
	for i := range posts {
		p := &posts[i]
		if p.Screenshot == nil {
			continue
		}
		ex, err := ocr.Extract(*p.Screenshot)
		if err != nil {
			continue // unreadable screenshot: the pipeline moves on
		}
		out = append(out, pendingObs{rel: i, day: p.Day, id: p.ID, down: ex.DownMbps})
	}
	return out
}

// foldPosts absorbs an accepted post batch (with its staged extractions)
// into the speed views. base is the store's post count before this batch
// was appended. Caller holds postMu.
func (vs *viewState) foldPosts(posts []social.Post, staged []pendingObs, base int) {
	if len(posts) == 0 {
		return
	}
	if vs.speeds == nil {
		vs.speeds = map[timeline.Month][]speedObs{}
	}
	for i := range posts {
		d := posts[i].Day
		if !vs.havePosts {
			vs.minDay, vs.maxDay = d, d
			vs.havePosts = true
			continue
		}
		if d < vs.minDay {
			vs.minDay = d
		}
		if d > vs.maxDay {
			vs.maxDay = d
		}
	}
	for _, ob := range staged {
		m := timeline.MonthOf(ob.day)
		vs.speeds[m] = append(vs.speeds[m], speedObs{day: ob.day, id: ob.id, down: ob.down, post: base + ob.rel})
	}
}

// --- store accessors over the views ---

// RatedSessions returns the rated-session subsequence in day-major order
// (shared, read-only) and the total session count, serving the MOS paths
// without a full scan.
func (s *Store) RatedSessions() (rated []telemetry.SessionRecord, total int) {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return s.views.rated, s.sessions.n
}

// Generations returns the session and post ingest generations. Any accepted
// batch bumps the corresponding counter, so (sessGen, postGen) keys exactly
// the store states a cached result is valid for.
func (s *Store) Generations() (sessions, posts uint64) {
	s.fenceSessions()
	s.fencePosts()
	s.sessMu.RLock()
	sessions = s.sessGen
	s.sessMu.RUnlock()
	s.postMu.RLock()
	posts = s.postGen
	s.postMu.RUnlock()
	return sessions, posts
}

// DailyEngagementView serves DailyEngagement(sessions, nil) from the
// incrementally maintained per-day accumulators.
func (s *Store) DailyEngagementView() []DayEngagement {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return dayEngagementFrom(s.views.daily)
}

// doseView runs read against the materialized dose-response view for key,
// under sessMu, registering the parameterization on first use. The catch-up
// fold runs outside any lock over a row snapshot; the write lock only folds
// the (small) gap and adopts or registers the result.
func (s *Store) doseView(key engViewKey, read func(*engView)) {
	s.fenceSessions()
	s.sessMu.RLock()
	if v, ok := s.views.eng[key]; ok {
		read(v)
		s.sessMu.RUnlock()
		return
	}
	rows := s.sessions.snapshot()
	s.sessMu.RUnlock()

	nv := newEngView(key)
	nv.foldRows(rows, 0, rows.Len())

	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if v, ok := s.views.eng[key]; ok {
		// Another query registered this key first; it is at least as
		// caught-up as ours.
		read(v)
		return
	}
	// Sessions may have arrived since the snapshot: fold the gap. folded is
	// an absolute row index, so resuming there continues the same
	// arrival-order fold.
	cur := s.sessions.snapshot()
	nv.foldRows(cur, nv.folded, cur.Len())
	if len(s.views.eng) < maxEngViews {
		if s.views.eng == nil {
			s.views.eng = map[engViewKey]*engView{}
		}
		s.views.eng[key] = nv
	}
	read(nv)
}

// DoseResponseSeries serves DoseResponseDaily(sessions, ...) from the
// materialized per-day accumulators.
func (s *Store) DoseResponseSeries(metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, isp string) stats.BinnedSeries {
	var out stats.BinnedSeries
	s.doseView(engViewKey{metric: metric, eng: eng, b: b, isp: isp}, func(v *engView) {
		out = v.series()
	})
	return out
}

// speedMonthObs is the snapshot the speed paths read: the post hull window,
// the shared append-only post slice, and each month's observations restored
// to corpus order — the batch pipeline scans the corpus, which sorts posts
// by (Day, ID); ingest order differs. Ties can only be identical duplicate
// posts, so sort stability is irrelevant to the values produced.
type speedMonthObs struct {
	window timeline.Range
	posts  []social.Post
	months map[timeline.Month][]speedObs
}

// speedObsByMonth snapshots the speed views. Returns ok=false when no posts
// have been ingested.
func (s *Store) speedObsByMonth() (speedMonthObs, bool) {
	s.fencePosts()
	s.postMu.RLock()
	if !s.views.havePosts {
		s.postMu.RUnlock()
		return speedMonthObs{}, false
	}
	mo := speedMonthObs{
		window: timeline.Range{From: s.views.minDay, To: s.views.maxDay},
		posts:  s.posts, // append-only: safe to index after unlock
		months: make(map[timeline.Month][]speedObs, len(s.views.speeds)),
	}
	for m, obs := range s.views.speeds {
		mo.months[m] = append([]speedObs(nil), obs...)
	}
	s.postMu.RUnlock()

	for _, obs := range mo.months {
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].day != obs[j].day {
				return obs[i].day < obs[j].day
			}
			return obs[i].id < obs[j].id
		})
	}
	return mo, true
}

// scoreMonthObs reads one month's corpus-ordered observations: the speed
// samples plus the strong-sentiment counts of the posts that carried them.
func scoreMonthObs(an *nlp.Analyzer, posts []social.Post, obs []speedObs) (xs []float64, strongPos, strongNeg int) {
	xs = make([]float64, len(obs))
	for i, ob := range obs {
		xs[i] = ob.down
		sc := an.Score(posts[ob.post].Text())
		if sc.StrongPositive() {
			strongPos++
		}
		if sc.StrongNegative() {
			strongNeg++
		}
	}
	return xs, strongPos, strongNeg
}

// monthlySpeedsView serves MonthlySpeeds(corpus, ...) from the extraction
// view: OCR ran at ingest, so the query only sorts each month's
// observations into corpus order, scores sentiment, and assembles the
// series. Returns ok=false when no posts have been ingested.
func (s *Store) monthlySpeedsView(an *nlp.Analyzer, model *leo.Model, seed uint64) ([]MonthSpeed, bool) {
	mo, ok := s.speedObsByMonth()
	if !ok {
		return nil, false
	}
	months := mo.window.Months()
	speeds := make(map[timeline.Month][]float64, len(months))
	strong := make(map[timeline.Month][2]int, len(months))
	for _, m := range months {
		obs := mo.months[m]
		if len(obs) == 0 {
			continue
		}
		xs, pos, neg := scoreMonthObs(an, mo.posts, obs)
		speeds[m] = xs
		strong[m] = [2]int{pos, neg}
	}
	return assembleMonthSpeeds(months, speeds, strong, model, seed), true
}
