package usaas

import (
	"sort"

	"usersignals/internal/colstore"
	"usersignals/internal/leo"
	"usersignals/internal/nlp"
	"usersignals/internal/ocr"
	"usersignals/internal/parallel"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// This file holds the store's materialized views: mergeable accumulators
// maintained incrementally at ingest time so the query handlers read
// precomputed state instead of re-scanning every session. Each view's fold
// replays exactly the canonical chunk-fold the batch analyses use
// (parallel.ChunkSize boundaries, left-merge in chunk order), so a
// view-served series is bit-identical to recomputing over a snapshot —
// parallelism and incrementality never change figure shapes.

// engViewKey identifies one dose-response view: the query parameters that
// select an accumulator. stats.Binner is comparable, so the key can be used
// directly in a map.
type engViewKey struct {
	metric telemetry.Metric
	eng    telemetry.Engagement
	b      stats.Binner
	isp    string // empty = unfiltered
}

// maxEngViews caps how many distinct dose-response parameterizations the
// store materializes; queries beyond the cap still work (they fold a fresh
// accumulator from the snapshot) but are not retained.
const maxEngViews = 64

// engView incrementally maintains DoseResponseN's fold for one key. merged
// is the left-fold of all complete canonical chunks in chunk order; tail
// accumulates the trailing partial chunk. folded counts every session seen
// (matching the absolute record indices chunk boundaries are defined on),
// while Add is filter-conditional, exactly like the batch scan.
type engView struct {
	key    engViewKey
	mf     func(*telemetry.NetAggregates) float64
	ef     func(*telemetry.SessionRecord) float64
	merged *stats.BinAcc
	tail   *stats.BinAcc
	folded int
}

func newEngView(key engViewKey) *engView {
	return &engView{
		key:    key,
		mf:     key.metric.Accessor(),
		ef:     key.eng.Accessor(),
		merged: stats.NewBinAcc(key.b),
		tail:   stats.NewBinAcc(key.b),
	}
}

// fold absorbs records, merging the tail into the running fold at every
// canonical chunk boundary.
func (v *engView) fold(recs []telemetry.SessionRecord) {
	var filter telemetry.Filter
	if v.key.isp != "" {
		filter = telemetry.OnISP(v.key.isp)
	}
	for i := range recs {
		r := &recs[i]
		if filter == nil || filter(r) {
			v.tail.Add(v.mf(&r.Net), v.ef(r))
		}
		v.folded++
		if v.folded%parallel.ChunkSize == 0 {
			_ = v.merged.Merge(v.tail) // same binner by construction
			v.tail = stats.NewBinAcc(v.key.b)
		}
	}
}

// foldColumns is fold over the columnar mirror: it absorbs records
// [v.folded, snap.Len()) from the snapshot, replaying the identical
// filter-conditional Add and chunk-boundary merge sequence, so a view caught
// up columnar-side is byte-identical to one folded from rows. Returns false
// (leaving the view untouched) when the parameterization has no column plan;
// the caller falls back to the row fold.
func (v *engView) foldColumns(snap colstore.Snapshot) bool {
	mcol, ok1 := colstore.MetricCol(v.key.metric)
	ecol, ok2 := colstore.EngagementCol(v.key.eng)
	if !ok1 || !ok2 {
		return false
	}
	var pred *colstore.Pred
	if v.key.isp != "" {
		spec := telemetry.OnISPSpec(v.key.isp)
		p, ok := snap.Compile(&spec)
		if !ok {
			return false
		}
		pred = p
	}
	snap.Scan(v.folded, snap.Len(), func(pt *colstore.Partition, from, to int) {
		xs, ys := pt.Floats(mcol), pt.Floats(ecol)
		for i := from; i < to; i++ {
			if pred.Accept(pt, i) {
				v.tail.Add(xs[i], ys[i])
			}
			v.folded++
			if v.folded%parallel.ChunkSize == 0 {
				_ = v.merged.Merge(v.tail)
				v.tail = stats.NewBinAcc(v.key.b)
			}
		}
	})
	return true
}

// series snapshots the view as the batch fold would produce it: complete
// chunks merged in order, then the trailing partial chunk last.
func (v *engView) series() stats.BinnedSeries {
	total := &stats.BinAcc{B: v.merged.B, Accs: append([]stats.Online(nil), v.merged.Accs...)}
	_ = total.Merge(v.tail)
	return total.Series()
}

// speedObs is one successfully OCR-extracted speed report, recorded at post
// ingest so the Fig. 7 query never re-runs extraction. post indexes the
// store's append-only posts slice (sentiment is scored at query time — the
// store stays analyzer-free).
type speedObs struct {
	day  timeline.Day
	id   uint64
	down float64
	post int
}

// viewState is everything the store maintains incrementally. Session-backed
// fields (rated, daily, eng) are guarded by the store's sessMu; post-backed
// fields (speeds, minDay/maxDay/havePosts) by postMu — the same shard locks
// as the data they are folded from, so view state is always
// generation-consistent with its source shard.
type viewState struct {
	// rated is the rated-session subsequence in ingest order, feeding the
	// MOS correlation/predictor paths without a full-store scan.
	rated []telemetry.SessionRecord
	// daily aggregates engagement by calendar day for incident detection.
	daily map[timeline.Day]*dayAcc
	// eng holds the materialized dose-response accumulators.
	eng map[engViewKey]*engView
	// speeds groups extracted speed observations by month; minDay/maxDay
	// track the post hull (the corpus window).
	speeds         map[timeline.Month][]speedObs
	minDay, maxDay timeline.Day
	havePosts      bool
}

// foldSessions absorbs an accepted (non-duplicate) session batch into every
// session-backed view. Caller holds sessMu.
func (vs *viewState) foldSessions(recs []telemetry.SessionRecord) {
	if vs.daily == nil {
		vs.daily = map[timeline.Day]*dayAcc{}
	}
	for i := range recs {
		r := &recs[i]
		if r.Rated {
			vs.rated = append(vs.rated, *r)
		}
		d := timeline.DayOf(r.Start)
		a := vs.daily[d]
		if a == nil {
			a = &dayAcc{}
			vs.daily[d] = a
		}
		a.add(r)
	}
	for _, v := range vs.eng {
		v.fold(recs)
	}
}

// pendingObs is an extraction result staged outside the lock: rel is the
// offset within the incoming batch (the final post index is rel + the
// store's pre-append length).
type pendingObs struct {
	rel  int
	day  timeline.Day
	id   uint64
	down float64
}

// extractSpeeds runs the OCR sweep over an incoming post batch. It holds no
// locks — extraction is the expensive part of post ingest and must not
// stall readers — so the caller folds the staged results in under the write
// lock (discarding them if the batch turns out to be a duplicate).
func extractSpeeds(posts []social.Post) []pendingObs {
	var out []pendingObs
	for i := range posts {
		p := &posts[i]
		if p.Screenshot == nil {
			continue
		}
		ex, err := ocr.Extract(*p.Screenshot)
		if err != nil {
			continue // unreadable screenshot: the pipeline moves on
		}
		out = append(out, pendingObs{rel: i, day: p.Day, id: p.ID, down: ex.DownMbps})
	}
	return out
}

// foldPosts absorbs an accepted post batch (with its staged extractions)
// into the speed views. base is the store's post count before this batch
// was appended. Caller holds postMu.
func (vs *viewState) foldPosts(posts []social.Post, staged []pendingObs, base int) {
	if len(posts) == 0 {
		return
	}
	if vs.speeds == nil {
		vs.speeds = map[timeline.Month][]speedObs{}
	}
	for i := range posts {
		d := posts[i].Day
		if !vs.havePosts {
			vs.minDay, vs.maxDay = d, d
			vs.havePosts = true
			continue
		}
		if d < vs.minDay {
			vs.minDay = d
		}
		if d > vs.maxDay {
			vs.maxDay = d
		}
	}
	for _, ob := range staged {
		m := timeline.MonthOf(ob.day)
		vs.speeds[m] = append(vs.speeds[m], speedObs{day: ob.day, id: ob.id, down: ob.down, post: base + ob.rel})
	}
}

// --- store accessors over the views ---

// SessionsShared returns the live session slice without copying. The slice
// is append-only under sessMu, so a header snapshot taken under RLock is
// race-free; callers must treat it as read-only. Callers that mutate
// records should use Sessions (the copying accessor).
func (s *Store) SessionsShared() []telemetry.SessionRecord {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return s.sessions
}

// RatedSessions returns the rated-session subsequence (shared, read-only)
// and the total session count, serving the MOS paths without a full scan.
func (s *Store) RatedSessions() (rated []telemetry.SessionRecord, total int) {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return s.views.rated, len(s.sessions)
}

// Generations returns the session and post ingest generations. Any accepted
// batch bumps the corresponding counter, so (sessGen, postGen) keys exactly
// the store states a cached result is valid for.
func (s *Store) Generations() (sessions, posts uint64) {
	s.fenceSessions()
	s.fencePosts()
	s.sessMu.RLock()
	sessions = s.sessGen
	s.sessMu.RUnlock()
	s.postMu.RLock()
	posts = s.postGen
	s.postMu.RUnlock()
	return sessions, posts
}

// DailyEngagementView serves DailyEngagement(sessions, nil) from the
// incrementally maintained per-day accumulators.
func (s *Store) DailyEngagementView() []DayEngagement {
	s.fenceSessions()
	s.sessMu.RLock()
	defer s.sessMu.RUnlock()
	return dayEngagementFrom(s.views.daily)
}

// DoseResponseSeries serves DoseResponse(sessions, ...) from a materialized
// accumulator, registering the parameterization on first use and catching
// it up from the snapshot. The catch-up fold runs outside any lock; the
// write lock only adopts or registers the result. When the columnar mirror
// is live the catch-up sweeps columns instead of row structs — same fold,
// same bytes, a fraction of the memory traffic.
func (s *Store) DoseResponseSeries(metric telemetry.Metric, eng telemetry.Engagement, b stats.Binner, isp string) stats.BinnedSeries {
	key := engViewKey{metric: metric, eng: eng, b: b, isp: isp}
	s.fenceSessions()
	s.sessMu.RLock()
	if v, ok := s.views.eng[key]; ok {
		series := v.series()
		s.sessMu.RUnlock()
		return series
	}
	rows := s.sessions
	var cols colstore.Snapshot
	haveCols := s.cols != nil
	if haveCols {
		cols = s.cols.Snapshot()
	}
	s.sessMu.RUnlock()

	nv := newEngView(key)
	if !haveCols || !nv.foldColumns(cols) {
		nv.fold(rows)
	}

	s.sessMu.Lock()
	defer s.sessMu.Unlock()
	if v, ok := s.views.eng[key]; ok {
		// Another query registered this key first; it is at least as
		// caught-up as ours.
		return v.series()
	}
	// Sessions may have arrived since the snapshot: fold the gap. Chunk
	// boundaries are absolute record indices, so resuming at nv.folded
	// continues the same canonical fold. The gap is row-folded even when
	// the mirror is live: it is at most a few batches, and a predicate
	// compiled against the snapshot's dictionaries could miss strings
	// interned after it.
	nv.fold(s.sessions[nv.folded:])
	if len(s.views.eng) < maxEngViews {
		if s.views.eng == nil {
			s.views.eng = map[engViewKey]*engView{}
		}
		s.views.eng[key] = nv
	}
	return nv.series()
}

// monthlySpeedsView serves MonthlySpeeds(corpus, ...) from the extraction
// view: OCR ran at ingest, so the query only sorts each month's
// observations into corpus order, scores sentiment, and assembles the
// series. Returns ok=false when no posts have been ingested.
func (s *Store) monthlySpeedsView(an *nlp.Analyzer, model *leo.Model, seed uint64) ([]MonthSpeed, bool) {
	s.fencePosts()
	s.postMu.RLock()
	if !s.views.havePosts {
		s.postMu.RUnlock()
		return nil, false
	}
	window := timeline.Range{From: s.views.minDay, To: s.views.maxDay}
	posts := s.posts // append-only: safe to index after unlock
	obsByMonth := make(map[timeline.Month][]speedObs, len(s.views.speeds))
	for m, obs := range s.views.speeds {
		obsByMonth[m] = append([]speedObs(nil), obs...)
	}
	s.postMu.RUnlock()

	months := window.Months()
	speeds := make(map[timeline.Month][]float64, len(months))
	strong := make(map[timeline.Month][2]int, len(months))
	for _, m := range months {
		obs := obsByMonth[m]
		// The batch pipeline scans the corpus, which sorts posts by
		// (Day, ID); ingest order differs, so restore corpus order here.
		// Ties can only be identical duplicate posts, so stability is
		// irrelevant to the values produced.
		sort.Slice(obs, func(i, j int) bool {
			if obs[i].day != obs[j].day {
				return obs[i].day < obs[j].day
			}
			return obs[i].id < obs[j].id
		})
		if len(obs) == 0 {
			continue
		}
		xs := make([]float64, len(obs))
		cnt := strong[m]
		for i, ob := range obs {
			xs[i] = ob.down
			sc := an.Score(posts[ob.post].Text())
			if sc.StrongPositive() {
				cnt[0]++
			}
			if sc.StrongNegative() {
				cnt[1]++
			}
		}
		speeds[m] = xs
		strong[m] = cnt
	}
	return assembleMonthSpeeds(months, speeds, strong, model, seed), true
}
