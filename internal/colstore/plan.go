package colstore

import (
	"math/bits"
	"time"

	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// Pred is a telemetry.FilterSpec compiled against the mirror's dictionaries:
// string constraints become code equalities, the enterprise constraint a
// bitset AND, metric bands direct float-column comparisons, and the
// business-hours constraint integer arithmetic over the epoch-nanos column.
// A nil *Pred accepts everything.
type Pred struct {
	never      bool // a dictionary lookup failed: nothing can match
	enterprise bool
	hasCountry bool
	country    uint32
	hasISP     bool
	isp        uint32
	minMeeting int
	bands      []bandPred
	hasBH      bool
	bh         timeline.BusinessHours
	bhSlow     bool // sub-second offset: fall back to civil time
}

type bandPred struct {
	col    FloatCol
	lo, hi float64
}

// Compile translates a filter spec into a columnar predicate. Returns
// (nil, true) for a nil spec — an unfiltered sweep. ok is false when a band
// references a metric with no column (an invalid Metric value), in which
// case the caller must use the row path; a Country/ISP absent from the
// dictionaries is not an error but a predicate that matches nothing.
func (s Snapshot) Compile(spec *telemetry.FilterSpec) (p *Pred, ok bool) {
	if spec == nil {
		return nil, true
	}
	p = &Pred{enterprise: spec.Enterprise, minMeeting: spec.MinMeetingSize}
	if spec.Country != "" {
		c, found := s.store.country.lookup(spec.Country)
		if !found {
			p.never = true
		}
		p.hasCountry, p.country = true, c
	}
	if spec.ISP != "" {
		c, found := s.store.isp.lookup(spec.ISP)
		if !found {
			p.never = true
		}
		p.hasISP, p.isp = true, c
	}
	for _, b := range spec.Bands {
		col, found := MetricCol(b.Metric)
		if !found {
			return nil, false
		}
		p.bands = append(p.bands, bandPred{col: col, lo: b.Lo, hi: b.Hi})
	}
	if spec.BusinessHours != nil {
		p.hasBH = true
		p.bh = *spec.BusinessHours
		p.bhSlow = p.bh.Offset%time.Second != 0
	}
	if len(p.bands) > 1 {
		s.orderBands(p)
	}
	return p, true
}

// bandProbe is how many leading records orderBands samples per band.
const bandProbe = 256

// orderBands sorts the predicate's bands most-selective-first, estimated by
// evaluating each band independently over a short prefix of the snapshot.
// Band selectivity is unknowable at compile time — it depends on the data —
// and evaluation cost hinges on it: the first band runs dense over every
// surviving word, while a selective front band thins the set so the rest
// drop to sparse bit-iteration. Order cannot change the result (the filter
// is a pure conjunction), only the cost.
func (s Snapshot) orderBands(p *Pred) {
	probeN := s.Len()
	if probeN > bandProbe {
		probeN = bandProbe
	}
	if probeN == 0 {
		return
	}
	counts := make([]int, len(p.bands))
	s.Scan(0, probeN, func(pt *Partition, from, to int) {
		for i := range p.bands {
			bd := &p.bands[i]
			for _, x := range pt.Floats(bd.col)[from:to] {
				if !(x < bd.lo || x > bd.hi) {
					counts[i]++
				}
			}
		}
	})
	// Stable insertion sort ascending by probe pass count.
	for i := 1; i < len(p.bands); i++ {
		for j := i; j > 0 && counts[j] < counts[j-1]; j-- {
			counts[j], counts[j-1] = counts[j-1], counts[j]
			p.bands[j], p.bands[j-1] = p.bands[j-1], p.bands[j]
		}
	}
}

// denseCut is the per-word survivor count above which a clause kernel
// evaluates all 64 lanes branchlessly instead of iterating set bits. Dense
// evaluation streams the column (the prefetcher hides memory latency) and
// emits no data-dependent branches; sparse bit-iteration wins only once
// the surviving set is thin.
const denseCut = 16

// Select computes the predicate's selection bitset over partition-local
// records [from, to): bit i of sel corresponds to record from+i. sel must
// have at least (to-from+63)/64 words; the tail bits of the last word are
// cleared.
//
// Clause order is chosen by evaluation cost, not spec order (the filter is
// a pure conjunction, so order cannot change the result). The enterprise
// clause goes first because it is word-at-a-time ANDs. Float bands go next:
// their dense kernels are branchless compare-streams, the cheapest way to
// thin a wide survivor set. The dictionary-code and meeting-size clauses
// pay a bit-field extraction per record on sealed partitions, so they run
// over the band-thinned set; business hours, the dearest per record, runs
// last.
func (p *Pred) Select(pt *Partition, from, to int, sel []uint64) {
	n := to - from
	sel = sel[:(n+63)>>6]
	if p != nil && p.never {
		for k := range sel {
			sel[k] = 0
		}
		return
	}
	fillOnes(sel, n)
	if p == nil {
		return
	}
	if p.enterprise {
		pt.andBool(BEnterprise, sel, from, n)
	}
	if len(p.bands) > 0 {
		// Band-led spec: the front band (most selective, per orderBands)
		// runs as a dense kernel; everything left is one fused sparse
		// pass over its survivors, so the selection words are walked
		// once more, not once per clause.
		bd := &p.bands[0]
		refineBand(sel, pt.Floats(bd.col), from, n, bd.lo, bd.hi)
		p.refineRest(pt, from, sel)
		return
	}
	if p.hasCountry {
		if pt.seal != nil {
			refinePackedEq(sel, &pt.seal.country, from, n, uint64(p.country))
		} else {
			refineEq(sel, pt.open.country, from, n, uint16(p.country))
		}
	}
	if p.hasISP {
		if pt.seal != nil {
			refinePackedEq(sel, &pt.seal.isp, from, n, uint64(p.isp))
		} else {
			refineEq(sel, pt.open.isp, from, n, p.isp)
		}
	}
	if p.minMeeting > 0 {
		if pt.seal != nil {
			refinePackedGe(sel, &pt.seal.meeting, from, n, int64(p.minMeeting))
		} else {
			refineGe(sel, pt.open.meeting, from, n, int64(p.minMeeting))
		}
	}
	if p.hasBH {
		p.refineBH(pt, from, sel)
	}
}

// b2u converts a comparison result to 0 or 1; the compiler lowers it to a
// flag-set instruction, so dense kernels built on it carry no
// data-dependent branches.
func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// bandCol is a band resolved against one partition's float columns.
type bandCol struct {
	xs     []float64
	lo, hi float64
}

// maxInlineBands bounds the stack-resident band array in refineRest;
// larger specs spill the slice to the heap.
const maxInlineBands = 8

// refineRest applies every clause after the leading band in one fused
// sparse pass: per surviving bit, an early-exit conjunction of the
// remaining bands, the dictionary-code and meeting-size clauses, and
// business hours, with the column bases hoisted into locals.
func (p *Pred) refineRest(pt *Partition, from int, sel []uint64) {
	rest := p.bands[1:]
	if len(rest) == 0 && !p.hasCountry && !p.hasISP && p.minMeeting <= 0 && !p.hasBH {
		return
	}
	var bandArr [maxInlineBands]bandCol
	bands := bandArr[:0]
	if len(rest) > maxInlineBands {
		bands = make([]bandCol, 0, len(rest))
	}
	for i := range rest {
		bands = append(bands, bandCol{xs: pt.Floats(rest[i].col), lo: rest[i].lo, hi: rest[i].hi})
	}
	if pt.seal != nil {
		p.refineRestSealed(pt.seal, from, sel, bands)
	} else {
		p.refineRestOpen(pt.open, from, sel, bands)
	}
}

// refineRestOpen is refineRest over an open partition's plain slices.
func (p *Pred) refineRestOpen(oc *openCols, from int, sel []uint64, bands []bandCol) {
	country, isp := oc.country, oc.isp
	meeting, startNS := oc.meeting, oc.startNS
	wantC, wantI := uint16(p.country), p.isp
	hasC, hasI := p.hasCountry, p.hasISP
	minMS := int64(p.minMeeting)
	hasBH, bhSlow, bh := p.hasBH, p.bhSlow, p.bh
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		for m := w; m != 0; m &= m - 1 {
			b := uint(trailing(m))
			i := base + int(b)
			if !passBands(bands, i) {
				w &^= 1 << b
				continue
			}
			if hasC && country[i] != wantC {
				w &^= 1 << b
				continue
			}
			if hasI && isp[i] != wantI {
				w &^= 1 << b
				continue
			}
			if minMS > 0 && meeting[i] < minMS {
				w &^= 1 << b
				continue
			}
			if hasBH && !passBH(bh, bhSlow, startNS[i]) {
				w &^= 1 << b
			}
		}
		sel[k] = w
	}
}

// refineRestSealed is refineRestOpen over bit-packed columns. The
// dictionary-code clauses first check the partition's packed value range: a
// target outside it cannot match any record, so the whole selection zeroes
// without touching a field.
func (p *Pred) refineRestSealed(sc *sealedCols, from int, sel []uint64, bands []bandCol) {
	hasC, hasI := p.hasCountry, p.hasISP
	var cf, ifld uint64
	if hasC {
		c := &sc.country
		want := uint64(p.country)
		if want < c.base || want > c.base+c.mask {
			for k := range sel {
				sel[k] = 0
			}
			return
		}
		cf = want - c.base
	}
	if hasI {
		c := &sc.isp
		want := uint64(p.isp)
		if want < c.base || want > c.base+c.mask {
			for k := range sel {
				sel[k] = 0
			}
			return
		}
		ifld = want - c.base
	}
	countryC, ispC := &sc.country, &sc.isp
	meetingC, startC := &sc.meeting, &sc.startNS
	minMS := p.minMeeting
	hasBH, bhSlow, bh := p.hasBH, p.bhSlow, p.bh
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		for m := w; m != 0; m &= m - 1 {
			b := uint(trailing(m))
			i := base + int(b)
			if !passBands(bands, i) {
				w &^= 1 << b
				continue
			}
			if hasC && countryC.at(i) != cf {
				w &^= 1 << b
				continue
			}
			if hasI && ispC.at(i) != ifld {
				w &^= 1 << b
				continue
			}
			if minMS > 0 && int(unzigzag(meetingC.directAt(i))) < minMS {
				w &^= 1 << b
				continue
			}
			if hasBH && !passBH(bh, bhSlow, unzigzag(startC.directAt(i))) {
				w &^= 1 << b
			}
		}
		sel[k] = w
	}
}

// passBands reports whether record i is inside every band. NaN fails both
// comparisons and passes, matching the row filter.
func passBands(bands []bandCol, i int) bool {
	for j := range bands {
		x := bands[j].xs[i]
		if x < bands[j].lo || x > bands[j].hi {
			return false
		}
	}
	return true
}

// refineBand keeps records with lo <= x <= hi. NaN fails both strict
// comparisons and therefore passes, matching the row filter.
func refineBand(sel []uint64, xs []float64, from, n int, lo, hi float64) {
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		if bits.OnesCount64(w) >= denseCut {
			lim := n - k<<6
			if lim > 64 {
				lim = 64
			}
			seg := xs[base : base+lim]
			var m uint64
			j := 0
			// Unrolled 8 wide: the lane masks combine through constant
			// shifts in two independent halves, so only one variable
			// shift and one accumulate per group reach the loop-carried
			// chain.
			for ; j+8 <= len(seg); j += 8 {
				x0, x1, x2, x3 := seg[j], seg[j+1], seg[j+2], seg[j+3]
				x4, x5, x6, x7 := seg[j+4], seg[j+5], seg[j+6], seg[j+7]
				g := b2u(!(x0 < lo)) & b2u(!(x0 > hi))
				g |= (b2u(!(x1 < lo)) & b2u(!(x1 > hi))) << 1
				g |= (b2u(!(x2 < lo)) & b2u(!(x2 > hi))) << 2
				g |= (b2u(!(x3 < lo)) & b2u(!(x3 > hi))) << 3
				h := b2u(!(x4 < lo)) & b2u(!(x4 > hi))
				h |= (b2u(!(x5 < lo)) & b2u(!(x5 > hi))) << 1
				h |= (b2u(!(x6 < lo)) & b2u(!(x6 > hi))) << 2
				h |= (b2u(!(x7 < lo)) & b2u(!(x7 > hi))) << 3
				m |= (g | h<<4) << uint(j)
			}
			for ; j < len(seg); j++ {
				x := seg[j]
				m |= (b2u(!(x < lo)) & b2u(!(x > hi))) << uint(j)
			}
			w &= m
		} else {
			for m := w; m != 0; m &= m - 1 {
				b := uint(trailing(m))
				x := xs[base+int(b)]
				if x < lo || x > hi {
					w &^= 1 << b
				}
			}
		}
		sel[k] = w
	}
}

// refineEq keeps records whose open-partition code equals want.
func refineEq[T uint16 | uint32](sel []uint64, codes []T, from, n int, want T) {
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		if bits.OnesCount64(w) >= denseCut {
			lim := n - k<<6
			if lim > 64 {
				lim = 64
			}
			var m uint64
			for j := 0; j < lim; j++ {
				m |= b2u(codes[base+j] == want) << uint(j)
			}
			w &= m
		} else {
			for m := w; m != 0; m &= m - 1 {
				b := uint(trailing(m))
				if codes[base+int(b)] != want {
					w &^= 1 << b
				}
			}
		}
		sel[k] = w
	}
}

// refinePackedEq is refineEq over a sealed, bit-packed code column. A
// target outside the partition's packed value range cannot match any
// record, so the whole selection zeroes without touching a field.
func refinePackedEq(sel []uint64, c *packed, from, n int, want uint64) {
	if want < c.base || want > c.base+c.mask {
		for k := range sel {
			sel[k] = 0
		}
		return
	}
	field := want - c.base
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		if bits.OnesCount64(w) >= denseCut {
			lim := n - k<<6
			if lim > 64 {
				lim = 64
			}
			var m uint64
			for j := 0; j < lim; j++ {
				m |= b2u(c.at(base+j) == field) << uint(j)
			}
			w &= m
		} else {
			for m := w; m != 0; m &= m - 1 {
				b := uint(trailing(m))
				if c.at(base+int(b)) != field {
					w &^= 1 << b
				}
			}
		}
		sel[k] = w
	}
}

// refineGe keeps records whose open-partition value is at least min.
func refineGe(sel []uint64, vals []int64, from, n int, min int64) {
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		if bits.OnesCount64(w) >= denseCut {
			lim := n - k<<6
			if lim > 64 {
				lim = 64
			}
			var m uint64
			for j := 0; j < lim; j++ {
				m |= b2u(vals[base+j] >= min) << uint(j)
			}
			w &= m
		} else {
			for m := w; m != 0; m &= m - 1 {
				b := uint(trailing(m))
				if vals[base+int(b)] < min {
					w &^= 1 << b
				}
			}
		}
		sel[k] = w
	}
}

// refinePackedGe is refineGe over a sealed zigzag-transformed column.
func refinePackedGe(sel []uint64, c *packed, from, n int, min int64) {
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		if bits.OnesCount64(w) >= denseCut {
			lim := n - k<<6
			if lim > 64 {
				lim = 64
			}
			var m uint64
			for j := 0; j < lim; j++ {
				m |= b2u(unzigzag(c.directAt(base+j)) >= min) << uint(j)
			}
			w &= m
		} else {
			for m := w; m != 0; m &= m - 1 {
				b := uint(trailing(m))
				if unzigzag(c.directAt(base+int(b))) < min {
					w &^= 1 << b
				}
			}
		}
		sel[k] = w
	}
}

// refineBH keeps records whose start falls inside business hours. Always
// sparse: it runs last over the thinnest set, and its per-record cost
// dwarfs the iteration overhead. The column access is resolved to the
// partition shape once, outside the loop.
func (p *Pred) refineBH(pt *Partition, from int, sel []uint64) {
	var startC *packed
	var startNS []int64
	if pt.seal != nil {
		startC = &pt.seal.startNS
	} else {
		startNS = pt.open.startNS
	}
	for k := range sel {
		w := sel[k]
		if w == 0 {
			continue
		}
		base := from + k<<6
		for m := w; m != 0; m &= m - 1 {
			b := uint(trailing(m))
			var ns int64
			if startC != nil {
				ns = unzigzag(startC.directAt(base + int(b)))
			} else {
				ns = startNS[base+int(b)]
			}
			if !passBH(p.bh, p.bhSlow, ns) {
				w &^= 1 << b
			}
		}
		sel[k] = w
	}
}

// passBH reports whether the epoch-nanos start falls inside business hours.
func passBH(bh timeline.BusinessHours, slow bool, ns int64) bool {
	if slow {
		return bh.Contains(time.Unix(0, ns).UTC())
	}
	sec := ns / 1e9
	if ns%1e9 < 0 {
		sec--
	}
	return bh.ContainsUnix(sec)
}

// Accept evaluates the predicate for one record — the sequential path used
// by the view catch-up fold. Matches Select bit-for-bit.
func (p *Pred) Accept(pt *Partition, i int) bool {
	if p == nil {
		return true
	}
	if p.never {
		return false
	}
	if p.enterprise && !pt.boolAt(BEnterprise, i) {
		return false
	}
	if p.hasCountry && pt.countryCode(i) != p.country {
		return false
	}
	if p.hasISP && pt.ispCode(i) != p.isp {
		return false
	}
	if p.minMeeting > 0 && pt.MeetingSize(i) < p.minMeeting {
		return false
	}
	for j := range p.bands {
		bd := &p.bands[j]
		x := pt.Floats(bd.col)[i]
		if x < bd.lo || x > bd.hi {
			return false
		}
	}
	if p.hasBH {
		if !passBH(p.bh, p.bhSlow, pt.StartNanos(i)) {
			return false
		}
	}
	return true
}
