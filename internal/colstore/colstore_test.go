package colstore

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// testRecord draws a record stressing every column: NaN metrics, negative
// ratings, pre-epoch starts, repeated and fresh dictionary values.
func testRecord(rng *rand.Rand) telemetry.SessionRecord {
	maybeNaN := func(v float64) float64 {
		if rng.Intn(12) == 0 {
			return math.NaN()
		}
		return v
	}
	var start time.Time
	if rng.Intn(20) == 0 {
		start = time.Unix(-rng.Int63n(1e6), rng.Int63n(1e9)).UTC()
	} else {
		start = time.Unix(1609459200+rng.Int63n(2*365*86400), rng.Int63n(1e9)).UTC()
	}
	return telemetry.SessionRecord{
		CallID:      rng.Uint64(),
		UserID:      rng.Uint64(),
		Platform:    []string{"desktop", "mobile", "web"}[rng.Intn(3)],
		MeetingSize: rng.Intn(16) - 2,
		Start:       start,
		DurationSec: rng.Float64() * 3600,
		Net: telemetry.NetAggregates{
			LatencyMean: maybeNaN(rng.Float64() * 80), LatencyMedian: rng.Float64() * 70, LatencyP95: rng.Float64() * 200,
			LossMean: maybeNaN(rng.Float64() * 0.5), LossMedian: rng.Float64() * 0.3, LossP95: rng.Float64() * 2,
			JitterMean: maybeNaN(rng.Float64() * 10), JitterMedian: rng.Float64() * 8, JitterP95: rng.Float64() * 30,
			BWMean: maybeNaN(2.5 + rng.Float64()*2), BWMedian: 2 + rng.Float64()*2, BWP95: 3 + rng.Float64()*3,
		},
		PresencePct: rng.Float64() * 100,
		CamOnPct:    rng.Float64() * 100,
		MicOnPct:    rng.Float64() * 100,
		LeftEarly:   rng.Intn(3) == 0,
		Rated:       rng.Intn(5) == 0,
		Rating:      rng.Intn(7) - 1,
		Country:     []string{"US", "DE", "IN", "BR"}[rng.Intn(4)],
		Enterprise:  rng.Intn(2) == 0,
		ISP:         []string{"starlink", "comcast", "verizon", ""}[rng.Intn(4)],
	}
}

// recordsEqual compares records exactly: float fields by bit pattern (NaN ==
// NaN), Start by instant and location.
func recordsEqual(a, b *telemetry.SessionRecord) bool {
	fb := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	na, nb := &a.Net, &b.Net
	return a.CallID == b.CallID && a.UserID == b.UserID &&
		a.Platform == b.Platform && a.MeetingSize == b.MeetingSize &&
		a.Start.Equal(b.Start) && a.Start.Location() == b.Start.Location() &&
		fb(a.DurationSec, b.DurationSec) &&
		fb(na.LatencyMean, nb.LatencyMean) && fb(na.LatencyMedian, nb.LatencyMedian) && fb(na.LatencyP95, nb.LatencyP95) &&
		fb(na.LossMean, nb.LossMean) && fb(na.LossMedian, nb.LossMedian) && fb(na.LossP95, nb.LossP95) &&
		fb(na.JitterMean, nb.JitterMean) && fb(na.JitterMedian, nb.JitterMedian) && fb(na.JitterP95, nb.JitterP95) &&
		fb(na.BWMean, nb.BWMean) && fb(na.BWMedian, nb.BWMedian) && fb(na.BWP95, nb.BWP95) &&
		fb(a.PresencePct, b.PresencePct) && fb(a.CamOnPct, b.CamOnPct) && fb(a.MicOnPct, b.MicOnPct) &&
		a.LeftEarly == b.LeftEarly && a.Rated == b.Rated && a.Rating == b.Rating &&
		a.Country == b.Country && a.Enterprise == b.Enterprise && a.ISP == b.ISP
}

func checkRoundTrip(t *testing.T, s *Store, recs []telemetry.SessionRecord) {
	t.Helper()
	snap := s.Snapshot()
	if snap.Len() != len(recs) {
		t.Fatalf("snapshot len %d, want %d", snap.Len(), len(recs))
	}
	got := snap.AppendRecords(nil)
	for i := range recs {
		if !recordsEqual(&got[i], &recs[i]) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], recs[i])
		}
	}
}

func TestRoundTripAndSealing(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var recs []telemetry.SessionRecord
	s := New()
	// Ragged batches, including empties.
	for b := 0; b < 30; b++ {
		var batch []telemetry.SessionRecord
		for i := 0; i < rng.Intn(40); i++ {
			batch = append(batch, testRecord(rng))
		}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, batch...)
	}
	checkRoundTrip(t, s, recs)
	s.SealTail()
	checkRoundTrip(t, s, recs)

	st := s.Stats()
	if st.Records != len(recs) || st.SealedPartitions != st.Partitions {
		t.Fatalf("stats after SealTail: %+v", st)
	}
}

func TestPartitionsAreIngestOrderDayRuns(t *testing.T) {
	day := func(d timeline.Day) time.Time { return d.Time().Add(12 * time.Hour) }
	mk := func(d timeline.Day) telemetry.SessionRecord {
		return telemetry.SessionRecord{Start: day(d), Platform: "p", Country: "US", ISP: "i"}
	}
	// Day-ordered bulk ingest: runs past minDayRun cut at each day change
	// into pure single-day partitions, in order.
	s := New()
	var recs []telemetry.SessionRecord
	for _, d := range []timeline.Day{3, 4, 5} {
		for i := 0; i < minDayRun+10; i++ {
			recs = append(recs, mk(d))
		}
	}
	if err := s.Append(recs); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap.parts) != 3 {
		t.Fatalf("partitions = %d, want 3", len(snap.parts))
	}
	wantDays := []timeline.Day{3, 4, 5}
	for i, pt := range snap.parts {
		if pt.Day() != wantDays[i] || pt.Len() != minDayRun+10 || pt.Mixed() {
			t.Fatalf("part %d: day %d len %d mixed %v, want pure day %d len %d",
				i, pt.Day(), pt.Len(), pt.Mixed(), wantDays[i], minDayRun+10)
		}
		if i < 2 && !pt.Sealed() {
			t.Fatalf("part %d not sealed after day transition", i)
		}
	}
	checkRoundTrip(t, s, recs)

	// A short run must NOT cut at a day change — interleaved days coalesce
	// into one mixed partition instead of shattering per record. Ingest
	// order is preserved either way (the round trip is the proof).
	s2 := New()
	recs2 := []telemetry.SessionRecord{mk(3), mk(3), mk(4), mk(3)}
	if err := s2.Append(recs2); err != nil {
		t.Fatal(err)
	}
	snap2 := s2.Snapshot()
	if len(snap2.parts) != 1 {
		t.Fatalf("interleaved short runs built %d partitions, want 1", len(snap2.parts))
	}
	if pt := snap2.parts[0]; !pt.Mixed() || pt.Day() != 3 {
		t.Fatalf("coalesced partition: mixed %v day %d, want mixed day 3", pt.Mixed(), pt.Day())
	}
	checkRoundTrip(t, s2, recs2)

	// And a full partition cuts even mid-day.
	s3 := New()
	var recs3 []telemetry.SessionRecord
	for i := 0; i < maxPartitionRows+1; i++ {
		recs3 = append(recs3, mk(6))
	}
	if err := s3.Append(recs3); err != nil {
		t.Fatal(err)
	}
	if got := len(s3.Snapshot().parts); got != 2 {
		t.Fatalf("oversize day built %d partitions, want 2", got)
	}
	checkRoundTrip(t, s3, recs3)
}

func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	sameDay := timeline.Date(2022, 3, 7)
	mk := func() telemetry.SessionRecord {
		r := testRecord(rng)
		r.Start = sameDay.Time().Add(time.Duration(rng.Intn(86400)) * time.Second)
		return r
	}
	s := New()
	var first []telemetry.SessionRecord
	for i := 0; i < 100; i++ {
		first = append(first, mk())
	}
	if err := s.Append(first); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	// Keep appending same-day records: the open partition the snapshot
	// cloned keeps growing underneath.
	for i := 0; i < 500; i++ {
		if err := s.Append([]telemetry.SessionRecord{mk()}); err != nil {
			t.Fatal(err)
		}
	}
	got := snap.AppendRecords(nil)
	if len(got) != len(first) {
		t.Fatalf("snapshot grew: %d records, want %d", len(got), len(first))
	}
	for i := range first {
		if !recordsEqual(&got[i], &first[i]) {
			t.Fatalf("snapshot record %d changed", i)
		}
	}
}

// selectMatchesRowFilter checks Select and Accept against the row filter
// compiled from the same spec, for every record, on both open and sealed
// shapes.
func TestSelectMatchesRowFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var recs []telemetry.SessionRecord
	s := New()
	for b := 0; b < 20; b++ {
		var batch []telemetry.SessionRecord
		for i := 0; i < rng.Intn(300); i++ {
			batch = append(batch, testRecord(rng))
		}
		if err := s.Append(batch); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, batch...)
	}

	bh := timeline.ESTBusinessHours
	ist := timeline.BusinessHours{Start: 9, End: 17, Offset: 5*time.Hour + 30*time.Minute}
	specs := []*telemetry.FilterSpec{
		nil,
		{},
		{Enterprise: true},
		{Country: "US"},
		{Country: "FR"}, // not in dictionary: matches nothing
		{ISP: "starlink"},
		{MinMeetingSize: 3},
		{BusinessHours: &bh},
		{BusinessHours: &ist}, // sub-second-incompatible? whole-second: fast path; still exercised
		{Bands: []telemetry.MetricBand{{Metric: telemetry.LatencyMean, Lo: 0, Hi: 40}}},
		func() *telemetry.FilterSpec { sp := telemetry.StudyCohortSpec(); return &sp }(),
		func() *telemetry.FilterSpec {
			sp := telemetry.StudyCohortSpec()
			sp.Bands = telemetry.ControlBandsSpec(telemetry.LatencyMean).Bands
			return &sp
		}(),
	}

	check := func(label string) {
		snap := s.Snapshot()
		for si, spec := range specs {
			var rowFilter telemetry.Filter
			if spec != nil {
				rowFilter = spec.Filter()
			}
			pred, ok := snap.Compile(spec)
			if !ok {
				t.Fatalf("%s spec %d: Compile not ok", label, si)
			}
			var sel [64]uint64
			idx := 0
			snap.Scan(0, snap.Len(), func(pt *Partition, from, to int) {
				// Random sub-spans exercise from-offsets.
				for from < to {
					span := from + 1 + rng.Intn(to-from)
					if span > to {
						span = to
					}
					pred.Select(pt, from, span, sel[:])
					for i := from; i < span; i++ {
						want := rowFilter == nil || rowFilter(&recs[idx])
						li := i - from
						got := sel[li>>6]>>(uint(li)&63)&1 == 1
						if got != want {
							t.Fatalf("%s spec %d: record %d Select=%v row=%v\n%+v", label, si, idx, got, want, recs[idx])
						}
						if acc := pred.Accept(pt, i); acc != want {
							t.Fatalf("%s spec %d: record %d Accept=%v row=%v", label, si, idx, acc, want)
						}
						idx++
					}
					from = span
				}
			})
			if idx != len(recs) {
				t.Fatalf("%s spec %d: scanned %d of %d records", label, si, idx, len(recs))
			}
			idx = 0
		}
	}
	check("mixed")
	s.SealTail()
	check("all-sealed")
}

func TestStatsSealedSmallerThanOpen(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	day := timeline.Date(2022, 5, 2)
	s := New()
	var batch []telemetry.SessionRecord
	for i := 0; i < 5000; i++ {
		r := testRecord(rng)
		r.Start = day.Time().Add(time.Duration(rng.Intn(86400)) * time.Second)
		batch = append(batch, r)
	}
	if err := s.Append(batch); err != nil {
		t.Fatal(err)
	}
	open := s.Stats()
	s.SealTail()
	sealed := s.Stats()
	if open.OpenBytes == 0 || sealed.SealedBytes == 0 {
		t.Fatalf("stats: open=%+v sealed=%+v", open, sealed)
	}
	if sealed.SealedBytes >= open.OpenBytes {
		t.Fatalf("sealing did not shrink: open %d bytes, sealed %d bytes", open.OpenBytes, sealed.SealedBytes)
	}
}
