package colstore

import (
	"fmt"
	"sync"
	"time"

	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
)

// FloatCol names one dense float64 column. Every float field of
// SessionRecord has a column so sealed partitions can round-trip records
// exactly; the analyses only sweep the Metric/Engagement subset.
type FloatCol int

// Float columns, in NetAggregates field order, then duration and engagement.
const (
	FLatencyMean FloatCol = iota
	FLatencyMedian
	FLatencyP95
	FLossMean
	FLossMedian
	FLossP95
	FJitterMean
	FJitterMedian
	FJitterP95
	FBWMean
	FBWMedian
	FBWP95
	FDurationSec
	FPresencePct
	FCamOnPct
	FMicOnPct
	NumFloatCols
)

// MetricCol maps an analysis metric to its column.
func MetricCol(m telemetry.Metric) (FloatCol, bool) {
	switch m {
	case telemetry.LatencyMean:
		return FLatencyMean, true
	case telemetry.LossMean:
		return FLossMean, true
	case telemetry.JitterMean:
		return FJitterMean, true
	case telemetry.BandwidthMean:
		return FBWMean, true
	case telemetry.LatencyP95:
		return FLatencyP95, true
	case telemetry.LossP95:
		return FLossP95, true
	case telemetry.JitterP95:
		return FJitterP95, true
	case telemetry.BandwidthP95:
		return FBWP95, true
	}
	return 0, false
}

// EngagementCol maps an engagement metric to its column.
func EngagementCol(e telemetry.Engagement) (FloatCol, bool) {
	switch e {
	case telemetry.Presence:
		return FPresencePct, true
	case telemetry.CamOn:
		return FCamOnPct, true
	case telemetry.MicOn:
		return FMicOnPct, true
	}
	return 0, false
}

// BoolCol names one bitset column.
type BoolCol int

// Bool columns.
const (
	BLeftEarly BoolCol = iota
	BRated
	BEnterprise
	numBoolCols
)

// Dictionary capacity limits: platform and country codes are uint16 on the
// wire between partitions and predicates, ISP codes uint32. Overflowing a
// dictionary is an Append error; the owning store drops the mirror and
// falls back to row scans rather than failing ingest.
const (
	maxSmallDict = 1 << 16
	maxISPDict   = 1 << 31
)

// dict interns strings to dense codes. Appends happen under the owning
// store's write lock, but predicate compilation and record materialization
// read dictionaries after that lock is released, so access is guarded here.
type dict struct {
	mu    sync.RWMutex
	ids   map[string]uint32
	names []string
}

func (d *dict) code(s string, limit int) (uint32, bool) {
	d.mu.RLock()
	c, ok := d.ids[s]
	d.mu.RUnlock()
	if ok {
		return c, true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if c, ok := d.ids[s]; ok {
		return c, true
	}
	if len(d.names) >= limit {
		return 0, false
	}
	if d.ids == nil {
		d.ids = map[string]uint32{}
	}
	c = uint32(len(d.names))
	d.names = append(d.names, s)
	d.ids[s] = c
	return c, true
}

func (d *dict) lookup(s string) (uint32, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	c, ok := d.ids[s]
	return c, ok
}

func (d *dict) name(c uint32) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.names[c]
}

func (d *dict) memBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var b int64
	for _, s := range d.names {
		b += int64(len(s)) + 16 // string bytes + header, counted once per distinct value
	}
	return b
}

// openCols is the uncompressed column set of the open (current-day)
// partition. Every slice is append-only under the store owner's write lock;
// snapshots capture clipped headers, so concurrent readers never observe a
// growing slice.
type openCols struct {
	floats   [NumFloatCols][]float64
	bools    [numBoolCols][]bool
	platform []uint16
	country  []uint16
	isp      []uint32
	meeting  []int64
	rating   []int64
	startNS  []int64
	callID   []uint64
	userID   []uint64
}

// newOpenCols allocates a column set with capacity for a full partition up
// front. A partition is bounded by maxPartitionRows, so reserving it whole
// means the 27 per-record column appends never reallocate: the incremental
// doubling (and, past 256 elements, Go's ~1.25x growth) was reallocating
// each column several times per partition on the ingest apply path, and the
// abandoned half-grown arrays were pure GC churn. Short partitions waste
// some slack only until they seal; SealTail clips or copies columns to
// their final length.
func newOpenCols() *openCols {
	oc := &openCols{}
	for c := range oc.floats {
		oc.floats[c] = make([]float64, 0, maxPartitionRows)
	}
	for c := range oc.bools {
		oc.bools[c] = make([]bool, 0, maxPartitionRows)
	}
	oc.platform = make([]uint16, 0, maxPartitionRows)
	oc.country = make([]uint16, 0, maxPartitionRows)
	oc.isp = make([]uint32, 0, maxPartitionRows)
	oc.meeting = make([]int64, 0, maxPartitionRows)
	oc.rating = make([]int64, 0, maxPartitionRows)
	oc.startNS = make([]int64, 0, maxPartitionRows)
	oc.callID = make([]uint64, 0, maxPartitionRows)
	oc.userID = make([]uint64, 0, maxPartitionRows)
	return oc
}

// sealedCols is the compressed column set of a sealed partition. Float
// columns stay raw (the compression spec covers timestamps, small ints, and
// strings); bools become bitsets; code and small-int columns are min-offset
// bit-packed with O(1) random access; the cold ID columns are
// successive-delta packed and decoded only by Materialize.
type sealedCols struct {
	floats   [NumFloatCols][]float64
	bools    [numBoolCols][]uint64
	platform packed
	country  packed
	isp      packed
	meeting  packed // zigzag-transformed
	rating   packed // zigzag-transformed
	startNS  packed // zigzag-transformed
	callID   packed // delta
	userID   packed // delta
}

// Partition boundary policy. A partition prefers to be one contiguous
// ingest-order day run: when ingest arrives in day order (the production
// shape — telemetry batches land as the day they describe closes), a day
// change seals the tail and the mirror holds pure single-day partitions.
// But ingest order is whatever the feed delivers, and a feed that
// interleaves days must not shatter the mirror into per-record partitions —
// per-partition overhead would swamp every sweep. So a day change only cuts
// a partition that has already reached minDayRun records; shorter runs
// absorb the new day and the partition is marked mixed. maxPartitionRows
// bounds every partition regardless. Boundaries depend only on the record
// sequence, so identically-ingested stores partition identically.
const (
	minDayRun        = 2048
	maxPartitionRows = 8192
)

// Partition is one contiguous ingest-order run — a single calendar day when
// ingest arrives day-ordered, a bounded mixed run otherwise. Exactly one
// partition — the last — may be open (seal == nil); sealed partitions are
// immutable.
type Partition struct {
	day     timeline.Day // day of the first record
	lastDay timeline.Day // day of the last record appended so far
	mixed   bool         // records span more than one day
	start   int          // absolute index of the partition's first record
	n       int
	open    *openCols
	seal    *sealedCols
}

// Day returns the calendar day of the partition's first record (the only
// day present unless Mixed reports true).
func (pt *Partition) Day() timeline.Day { return pt.day }

// Mixed reports whether the partition holds more than one calendar day —
// the out-of-order-ingest shape.
func (pt *Partition) Mixed() bool { return pt.mixed }

// Base returns the absolute record index of the partition's first record.
func (pt *Partition) Base() int { return pt.start }

// Len returns the partition's record count (fixed at snapshot time for the
// open tail).
func (pt *Partition) Len() int { return pt.n }

// Sealed reports whether the partition is compressed.
func (pt *Partition) Sealed() bool { return pt.seal != nil }

// Floats returns the column's raw values. Identical representation sealed or
// open: float columns are never transformed.
func (pt *Partition) Floats(c FloatCol) []float64 {
	if pt.seal != nil {
		return pt.seal.floats[c]
	}
	return pt.open.floats[c]
}

func (pt *Partition) boolAt(c BoolCol, i int) bool {
	if pt.seal != nil {
		return pt.seal.bools[c][i>>6]>>(uint(i)&63)&1 == 1
	}
	return pt.open.bools[c][i]
}

// andBool ANDs the bool column's bits [from, from+n) into sel[0..n).
func (pt *Partition) andBool(c BoolCol, sel []uint64, from, n int) {
	if pt.seal != nil {
		andBitsInto(sel, pt.seal.bools[c], from, n)
		return
	}
	bl := pt.open.bools[c]
	// sel is all-ones here (enterprise is the first clause), so build each
	// word densely instead of iterating set bits.
	for k := range sel {
		if sel[k] == 0 {
			continue
		}
		base := from + k<<6
		lim := n - k<<6
		if lim > 64 {
			lim = 64
		}
		var m uint64
		for j := 0; j < lim; j++ {
			if bl[base+j] {
				m |= 1 << uint(j)
			}
		}
		sel[k] &= m
	}
}

// PlatformCode returns the record's platform dictionary code.
func (pt *Partition) PlatformCode(i int) uint32 {
	if pt.seal != nil {
		return uint32(pt.seal.platform.directAt(i))
	}
	return uint32(pt.open.platform[i])
}

func (pt *Partition) countryCode(i int) uint32 {
	if pt.seal != nil {
		return uint32(pt.seal.country.directAt(i))
	}
	return uint32(pt.open.country[i])
}

func (pt *Partition) ispCode(i int) uint32 {
	if pt.seal != nil {
		return uint32(pt.seal.isp.directAt(i))
	}
	return pt.open.isp[i]
}

// MeetingSize returns the record's participant count.
func (pt *Partition) MeetingSize(i int) int {
	if pt.seal != nil {
		return int(unzigzag(pt.seal.meeting.directAt(i)))
	}
	return int(pt.open.meeting[i])
}

func (pt *Partition) ratingAt(i int) int {
	if pt.seal != nil {
		return int(unzigzag(pt.seal.rating.directAt(i)))
	}
	return int(pt.open.rating[i])
}

// StartNanos returns the record's start instant as Unix nanoseconds.
func (pt *Partition) StartNanos(i int) int64 {
	if pt.seal != nil {
		return unzigzag(pt.seal.startNS.directAt(i))
	}
	return pt.open.startNS[i]
}

// Store is the columnar mirror. Append, Snapshot, SealTail, and Stats rely
// on the owner's store lock for synchronization (the usaas store calls them
// under its mutex); only the dictionaries carry their own locks, because
// they are read after snapshot release.
type Store struct {
	platform dict
	country  dict
	isp      dict
	parts    []*Partition
	total    int
}

// New creates an empty mirror.
func New() *Store { return &Store{} }

// Len returns the mirrored record count. Caller synchronizes.
func (s *Store) Len() int { return s.total }

// Append mirrors a batch. Caller holds the owner's write lock. On error
// (dictionary overflow) the mirror is inconsistent and must be discarded;
// ingest itself is unaffected.
func (s *Store) Append(recs []telemetry.SessionRecord) error {
	for i := range recs {
		r := &recs[i]
		day := timeline.DayOf(r.Start)
		tail := s.tail()
		cut := tail == nil || tail.seal != nil || tail.n >= maxPartitionRows ||
			(tail.lastDay != day && tail.n >= minDayRun)
		if cut {
			s.SealTail()
			tail = &Partition{day: day, lastDay: day, start: s.total, open: newOpenCols()}
			s.parts = append(s.parts, tail)
		} else if tail.lastDay != day {
			tail.mixed = true
			tail.lastDay = day
		}
		pc, ok1 := s.platform.code(r.Platform, maxSmallDict)
		cc, ok2 := s.country.code(r.Country, maxSmallDict)
		ic, ok3 := s.isp.code(r.ISP, maxISPDict)
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("colstore: dictionary overflow")
		}
		oc := tail.open
		oc.floats[FLatencyMean] = append(oc.floats[FLatencyMean], r.Net.LatencyMean)
		oc.floats[FLatencyMedian] = append(oc.floats[FLatencyMedian], r.Net.LatencyMedian)
		oc.floats[FLatencyP95] = append(oc.floats[FLatencyP95], r.Net.LatencyP95)
		oc.floats[FLossMean] = append(oc.floats[FLossMean], r.Net.LossMean)
		oc.floats[FLossMedian] = append(oc.floats[FLossMedian], r.Net.LossMedian)
		oc.floats[FLossP95] = append(oc.floats[FLossP95], r.Net.LossP95)
		oc.floats[FJitterMean] = append(oc.floats[FJitterMean], r.Net.JitterMean)
		oc.floats[FJitterMedian] = append(oc.floats[FJitterMedian], r.Net.JitterMedian)
		oc.floats[FJitterP95] = append(oc.floats[FJitterP95], r.Net.JitterP95)
		oc.floats[FBWMean] = append(oc.floats[FBWMean], r.Net.BWMean)
		oc.floats[FBWMedian] = append(oc.floats[FBWMedian], r.Net.BWMedian)
		oc.floats[FBWP95] = append(oc.floats[FBWP95], r.Net.BWP95)
		oc.floats[FDurationSec] = append(oc.floats[FDurationSec], r.DurationSec)
		oc.floats[FPresencePct] = append(oc.floats[FPresencePct], r.PresencePct)
		oc.floats[FCamOnPct] = append(oc.floats[FCamOnPct], r.CamOnPct)
		oc.floats[FMicOnPct] = append(oc.floats[FMicOnPct], r.MicOnPct)
		oc.bools[BLeftEarly] = append(oc.bools[BLeftEarly], r.LeftEarly)
		oc.bools[BRated] = append(oc.bools[BRated], r.Rated)
		oc.bools[BEnterprise] = append(oc.bools[BEnterprise], r.Enterprise)
		oc.platform = append(oc.platform, uint16(pc))
		oc.country = append(oc.country, uint16(cc))
		oc.isp = append(oc.isp, ic)
		oc.meeting = append(oc.meeting, int64(r.MeetingSize))
		oc.rating = append(oc.rating, int64(r.Rating))
		oc.startNS = append(oc.startNS, r.Start.UnixNano())
		oc.callID = append(oc.callID, r.CallID)
		oc.userID = append(oc.userID, r.UserID)
		tail.n++
		s.total++
	}
	return nil
}

func (s *Store) tail() *Partition {
	if len(s.parts) == 0 {
		return nil
	}
	return s.parts[len(s.parts)-1]
}

// SealTail compresses the open tail partition, if any. Called automatically
// on day transitions; exposed so tests and benchmarks can measure the
// all-sealed shape. Caller holds the owner's write lock. The old open
// partition object is left intact — live snapshots hold clones of it.
func (s *Store) SealTail() {
	tail := s.tail()
	if tail == nil || tail.seal != nil {
		return
	}
	oc := tail.open
	sc := &sealedCols{}
	for c := FloatCol(0); c < NumFloatCols; c++ {
		vals := oc.floats[c][:tail.n]
		if cap(oc.floats[c]) >= tail.n+tail.n/2 {
			// The open columns are preallocated a full partition's capacity;
			// a short partition (day-boundary cut) would pin the whole
			// backing array behind a clipped header forever. Copy those to
			// exact size; full partitions share the backing array as before.
			vals = append(make([]float64, 0, tail.n), vals...)
		}
		sc.floats[c] = vals[:len(vals):len(vals)]
	}
	for c := BoolCol(0); c < numBoolCols; c++ {
		sc.bools[c] = packBools(oc.bools[c][:tail.n])
	}
	sc.platform = packDirect(widen16(oc.platform[:tail.n]))
	sc.country = packDirect(widen16(oc.country[:tail.n]))
	sc.isp = packDirect(widen32(oc.isp[:tail.n]))
	sc.meeting = packDirect(zigzags(oc.meeting[:tail.n]))
	sc.rating = packDirect(zigzags(oc.rating[:tail.n]))
	sc.startNS = packDirect(zigzags(oc.startNS[:tail.n]))
	sc.callID = packDelta(oc.callID[:tail.n])
	sc.userID = packDelta(oc.userID[:tail.n])
	s.parts[len(s.parts)-1] = &Partition{day: tail.day, lastDay: tail.lastDay, mixed: tail.mixed, start: tail.start, n: tail.n, seal: sc}
}

func widen16(xs []uint16) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func widen32(xs []uint32) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = uint64(x)
	}
	return out
}

func zigzags(xs []int64) []uint64 {
	out := make([]uint64, len(xs))
	for i, x := range xs {
		out[i] = zigzag(x)
	}
	return out
}

// Snapshot is an immutable view of the mirror at a point in time. Sealed
// partitions are shared; the open tail is captured as a clone with clipped
// column headers, so later appends (which only ever extend slices) are
// invisible and race-free.
type Snapshot struct {
	store *Store
	parts []*Partition
	total int
}

// Snapshot captures the current state. Caller holds the owner's lock (read
// suffices).
func (s *Store) Snapshot() Snapshot {
	snap := Snapshot{store: s, total: s.total}
	if len(s.parts) == 0 {
		return snap
	}
	snap.parts = make([]*Partition, len(s.parts))
	copy(snap.parts, s.parts)
	last := snap.parts[len(snap.parts)-1]
	if last.seal == nil {
		clone := Partition{day: last.day, lastDay: last.lastDay, mixed: last.mixed, start: last.start, n: last.n}
		oc := *last.open
		clipOpen(&oc, last.n)
		clone.open = &oc
		snap.parts[len(snap.parts)-1] = &clone
	}
	return snap
}

func clipOpen(oc *openCols, n int) {
	for c := range oc.floats {
		oc.floats[c] = oc.floats[c][:n:n]
	}
	for c := range oc.bools {
		oc.bools[c] = oc.bools[c][:n:n]
	}
	oc.platform = oc.platform[:n:n]
	oc.country = oc.country[:n:n]
	oc.isp = oc.isp[:n:n]
	oc.meeting = oc.meeting[:n:n]
	oc.rating = oc.rating[:n:n]
	oc.startNS = oc.startNS[:n:n]
	oc.callID = oc.callID[:n:n]
	oc.userID = oc.userID[:n:n]
}

// Len returns the snapshot's record count.
func (s Snapshot) Len() int { return s.total }

// Scan walks the partitions overlapping absolute record range [lo, hi),
// calling fn with partition-local index bounds. Visits run in ascending
// record order — the ingest order — which is what keeps columnar folds
// bit-identical to row scans.
func (s Snapshot) Scan(lo, hi int, fn func(pt *Partition, from, to int)) {
	if hi > s.total {
		hi = s.total
	}
	for _, pt := range s.parts {
		if pt.start >= hi {
			return
		}
		if pt.start+pt.n <= lo {
			continue
		}
		from, to := 0, pt.n
		if lo > pt.start {
			from = lo - pt.start
		}
		if hi < pt.start+pt.n {
			to = hi - pt.start
		}
		fn(pt, from, to)
	}
}

// PlatformName resolves a platform dictionary code.
func (s Snapshot) PlatformName(c uint32) string { return s.store.platform.name(c) }

// AppendRecords materializes the snapshot back into row records, appending
// to dst. This is the cold path (fuzz verification, export); it decodes the
// delta-packed ID columns partition by partition.
func (s Snapshot) AppendRecords(dst []telemetry.SessionRecord) []telemetry.SessionRecord {
	var callIDs, userIDs []uint64
	for _, pt := range s.parts {
		if pt.seal != nil {
			callIDs = pt.seal.callID.unpackDelta(callIDs)
			userIDs = pt.seal.userID.unpackDelta(userIDs)
		} else {
			callIDs, userIDs = pt.open.callID, pt.open.userID
		}
		for i := 0; i < pt.n; i++ {
			dst = append(dst, telemetry.SessionRecord{
				CallID:      callIDs[i],
				UserID:      userIDs[i],
				Platform:    s.store.platform.name(pt.PlatformCode(i)),
				MeetingSize: pt.MeetingSize(i),
				Start:       time.Unix(0, pt.StartNanos(i)).UTC(),
				DurationSec: pt.Floats(FDurationSec)[i],
				Net: telemetry.NetAggregates{
					LatencyMean: pt.Floats(FLatencyMean)[i], LatencyMedian: pt.Floats(FLatencyMedian)[i], LatencyP95: pt.Floats(FLatencyP95)[i],
					LossMean: pt.Floats(FLossMean)[i], LossMedian: pt.Floats(FLossMedian)[i], LossP95: pt.Floats(FLossP95)[i],
					JitterMean: pt.Floats(FJitterMean)[i], JitterMedian: pt.Floats(FJitterMedian)[i], JitterP95: pt.Floats(FJitterP95)[i],
					BWMean: pt.Floats(FBWMean)[i], BWMedian: pt.Floats(FBWMedian)[i], BWP95: pt.Floats(FBWP95)[i],
				},
				PresencePct: pt.Floats(FPresencePct)[i],
				CamOnPct:    pt.Floats(FCamOnPct)[i],
				MicOnPct:    pt.Floats(FMicOnPct)[i],
				LeftEarly:   pt.boolAt(BLeftEarly, i),
				Rated:       pt.boolAt(BRated, i),
				Rating:      pt.ratingAt(i),
				Country:     s.store.country.name(pt.countryCode(i)),
				Enterprise:  pt.boolAt(BEnterprise, i),
				ISP:         s.store.isp.name(pt.ispCode(i)),
			})
		}
	}
	return dst
}

// Stats reports the mirror's resident footprint. Caller holds the owner's
// lock.
type Stats struct {
	Records          int
	Partitions       int
	SealedPartitions int
	OpenBytes        int64
	SealedBytes      int64
	DictBytes        int64
}

// Stats computes the resident-bytes breakdown.
func (s *Store) Stats() Stats {
	st := Stats{Records: s.total, Partitions: len(s.parts)}
	st.DictBytes = s.platform.memBytes() + s.country.memBytes() + s.isp.memBytes()
	for _, pt := range s.parts {
		if pt.seal != nil {
			st.SealedPartitions++
			sc := pt.seal
			var b int64
			for c := range sc.floats {
				b += int64(len(sc.floats[c])) * 8
			}
			for c := range sc.bools {
				b += int64(len(sc.bools[c])) * 8
			}
			b += sc.platform.memBytes() + sc.country.memBytes() + sc.isp.memBytes() +
				sc.meeting.memBytes() + sc.rating.memBytes() + sc.startNS.memBytes() +
				sc.callID.memBytes() + sc.userID.memBytes()
			st.SealedBytes += b
		} else {
			oc := pt.open
			var b int64
			for c := range oc.floats {
				b += int64(len(oc.floats[c])) * 8
			}
			for c := range oc.bools {
				b += int64(len(oc.bools[c]))
			}
			b += int64(len(oc.platform))*2 + int64(len(oc.country))*2 + int64(len(oc.isp))*4
			b += int64(len(oc.meeting)+len(oc.rating)+len(oc.startNS)+len(oc.callID)+len(oc.userID)) * 8
			st.OpenBytes += b
		}
	}
	return st
}
