// Package colstore is the columnar mirror of the session corpus: a
// struct-of-arrays copy of every hot SessionRecord field, partitioned into
// contiguous ingest-order runs — single calendar days when ingest arrives
// day-ordered, bounded mixed runs otherwise (see the boundary policy in
// colstore.go) — with light compression on sealed partitions. Analyses
// sweep dense per-column blocks instead of 248-byte row structs, and
// filters compile to per-partition predicates over dictionary codes and
// bitsets (plan.go).
//
// The store preserves ingest order exactly: partitions are contiguous
// spans of the record sequence, so the concatenation of partitions IS the
// row slice. That is what keeps columnar folds bit-identical to the row
// scans — the canonical chunk fold (parallel.ChunkSize boundaries over
// absolute record indices) visits values in the same order either way, and
// Welford accumulation is order-dependent.
package colstore

import "math/bits"

// packed is a fixed-width bit-packed uint64 stream. Two transforms:
//
//   - direct (min-offset): each stored field is value-base, where base is the
//     minimum. Supports O(1) random access via at(), which is what lets
//     predicates probe sealed columns without decoding whole partitions.
//   - delta: the first value is base; stored field i is the zigzag of the
//     successive difference. Sequential decode only (unpackDelta); used for
//     the cold ID columns, which only record materialization reads.
//
// Fields pack little-endian into 64-bit words at bit offset i*width.
type packed struct {
	n     int
	width uint
	mask  uint64
	base  uint64
	words []uint64
}

// packFields bit-packs pre-transformed fields (each < 1<<width).
func packFields(fields []uint64, width uint) []uint64 {
	if width == 0 || len(fields) == 0 {
		return nil
	}
	words := make([]uint64, (len(fields)*int(width)+63)/64)
	for i, v := range fields {
		pos := i * int(width)
		w, off := pos>>6, uint(pos&63)
		words[w] |= v << off
		if off+width > 64 {
			words[w+1] = v >> (64 - off)
		}
	}
	return words
}

// at extracts stored field i (the transformed value, before base is applied).
func (p *packed) at(i int) uint64 {
	if p.width == 0 {
		return 0
	}
	pos := i * int(p.width)
	w, off := pos>>6, uint(pos&63)
	v := p.words[w] >> off
	if off+p.width > 64 {
		v |= p.words[w+1] << (64 - off)
	}
	return v & p.mask
}

// directAt is random access into a direct-packed column.
func (p *packed) directAt(i int) uint64 { return p.base + p.at(i) }

// packDirect builds a min-offset direct pack of vals.
func packDirect(vals []uint64) packed {
	p := packed{n: len(vals)}
	if len(vals) == 0 {
		return p
	}
	min, max := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	p.base = min
	p.width = uint(bits.Len64(max - min))
	if p.width > 0 {
		p.mask = 1<<p.width - 1
		fields := make([]uint64, len(vals))
		for i, v := range vals {
			fields[i] = v - min
		}
		p.words = packFields(fields, p.width)
	}
	return p
}

// packDelta builds a successive-delta pack: base is vals[0] and field i is
// zigzag(vals[i+1]-vals[i]). Differences use wrapping uint64 arithmetic, so
// any value sequence round-trips.
func packDelta(vals []uint64) packed {
	p := packed{n: len(vals)}
	if len(vals) == 0 {
		return p
	}
	p.base = vals[0]
	if len(vals) == 1 {
		return p
	}
	fields := make([]uint64, len(vals)-1)
	var maxZ uint64
	for i := 1; i < len(vals); i++ {
		z := zigzag(int64(vals[i] - vals[i-1]))
		fields[i-1] = z
		if z > maxZ {
			maxZ = z
		}
	}
	p.width = uint(bits.Len64(maxZ))
	if p.width > 0 {
		p.mask = 1<<p.width - 1
		p.words = packFields(fields, p.width)
	}
	return p
}

// unpackDelta decodes the whole delta-packed column into dst (resized as
// needed).
func (p *packed) unpackDelta(dst []uint64) []uint64 {
	if cap(dst) < p.n {
		dst = make([]uint64, p.n)
	}
	dst = dst[:p.n]
	if p.n == 0 {
		return dst
	}
	prev := p.base
	dst[0] = prev
	for i := 1; i < p.n; i++ {
		prev += uint64(unzigzag(p.at(i - 1)))
		dst[i] = prev
	}
	return dst
}

// memBytes is the packed column's resident size (words only; struct header
// is negligible and identical either way).
func (p *packed) memBytes() int64 { return int64(len(p.words)) * 8 }

func zigzag(d int64) uint64   { return uint64(d<<1) ^ uint64(d>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// packBools packs a bool column into a bitset ([]uint64, little-endian bit
// order).
func packBools(vals []bool) []uint64 {
	words := make([]uint64, (len(vals)+63)/64)
	for i, v := range vals {
		if v {
			words[i>>6] |= 1 << (uint(i) & 63)
		}
	}
	return words
}

// fillOnes sets the first n bits of sel and clears the rest of the last
// touched word. sel must have at least (n+63)/64 words.
func fillOnes(sel []uint64, n int) {
	full := n >> 6
	for i := 0; i < full; i++ {
		sel[i] = ^uint64(0)
	}
	if tail := uint(n & 63); tail != 0 {
		sel[full] = 1<<tail - 1
	}
}

// andBitsInto ANDs bits [from, from+n) of the packed bitset src into
// sel[0..n). Bits of src beyond its data read as zero, which can only clear
// sel bits that fillOnes already masked off.
func andBitsInto(sel []uint64, src []uint64, from, n int) {
	w, off := from>>6, uint(from&63)
	for k := 0; k*64 < n; k++ {
		var v uint64
		if w+k < len(src) {
			v = src[w+k] >> off
		}
		if off != 0 && w+k+1 < len(src) {
			v |= src[w+k+1] << (64 - off)
		}
		sel[k] &= v
	}
}

// trailing is the lowest set bit's index (64 when m is 0).
func trailing(m uint64) int { return bits.TrailingZeros64(m) }
