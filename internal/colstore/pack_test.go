package colstore

import (
	"math/rand"
	"testing"
)

func randVals(rng *rand.Rand, n int, spread uint) []uint64 {
	out := make([]uint64, n)
	base := rng.Uint64()
	for i := range out {
		out[i] = base + rng.Uint64()>>(64-spread)
	}
	return out
}

func TestPackDirectRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		spread := uint(1 + rng.Intn(63))
		vals := randVals(rng, n, spread)
		p := packDirect(vals)
		for i, v := range vals {
			if got := p.directAt(i); got != v {
				t.Fatalf("trial %d: directAt(%d) = %d, want %d (width %d)", trial, i, got, v, p.width)
			}
		}
	}
	// Constant column packs to zero words.
	p := packDirect([]uint64{7, 7, 7})
	if len(p.words) != 0 || p.directAt(1) != 7 {
		t.Fatalf("constant column: words=%d at(1)=%d", len(p.words), p.directAt(1))
	}
}

func TestPackDeltaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(200)
		var vals []uint64
		switch trial % 3 {
		case 0: // sorted-ish (timestamps)
			v := rng.Uint64() >> 20
			for i := 0; i < n; i++ {
				v += uint64(rng.Intn(1 << 20))
				vals = append(vals, v)
			}
		case 1: // fully random, including wraparound-sized diffs
			for i := 0; i < n; i++ {
				vals = append(vals, rng.Uint64())
			}
		default: // small range
			for i := 0; i < n; i++ {
				vals = append(vals, uint64(rng.Intn(5)))
			}
		}
		p := packDelta(vals)
		got := p.unpackDelta(nil)
		if len(got) != len(vals) {
			t.Fatalf("trial %d: length %d, want %d", trial, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("trial %d: [%d] = %d, want %d", trial, i, got[i], vals[i])
			}
		}
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 63, -64, 1 << 40, -(1 << 40), 1<<63 - 1, -1 << 63} {
		if got := unzigzag(zigzag(d)); got != d {
			t.Fatalf("zigzag round trip %d -> %d", d, got)
		}
	}
}

func TestAndBitsInto(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		total := 1 + rng.Intn(400)
		bl := make([]bool, total)
		for i := range bl {
			bl[i] = rng.Intn(2) == 0
		}
		src := packBools(bl)
		from := rng.Intn(total)
		n := 1 + rng.Intn(total-from)
		sel := make([]uint64, (n+63)/64)
		fillOnes(sel, n)
		// Randomly pre-clear some bits to check AND semantics.
		pre := make([]bool, n)
		for i := range pre {
			pre[i] = rng.Intn(4) > 0
			if !pre[i] {
				sel[i>>6] &^= 1 << (uint(i) & 63)
			}
		}
		andBitsInto(sel, src, from, n)
		for i := 0; i < n; i++ {
			want := pre[i] && bl[from+i]
			got := sel[i>>6]>>(uint(i)&63)&1 == 1
			if got != want {
				t.Fatalf("trial %d: bit %d (from=%d n=%d) = %v, want %v", trial, i, from, n, got, want)
			}
		}
		// Tail bits beyond n must stay clear.
		for i := n; i < len(sel)*64; i++ {
			if sel[i>>6]>>(uint(i)&63)&1 == 1 {
				t.Fatalf("trial %d: tail bit %d set (n=%d)", trial, i, n)
			}
		}
	}
}
