package leo

import (
	"math"
	"sort"

	"usersignals/internal/simrand"
	"usersignals/internal/timeline"
)

// Model computes constellation state and user-experienced performance by
// day. Construct with NewModel; the zero value is not useful.
type Model struct {
	launches    []Launch
	subscribers []SubscriberMilestone

	// Speed-model parameters; see MedianDownMbps.
	PlanMbps        float64 // nominal service-plan ceiling
	CoverageScale   float64 // satellites for ~63% coverage maturity
	ComfortRatio    float64 // users-per-active-satellite before congestion
	CongestionScale float64 // users-per-satellite scale of the decline
}

// NewModel returns the historically parameterized model.
func NewModel() *Model {
	m := &Model{
		launches:        DefaultLaunches(),
		subscribers:     DefaultSubscribers(),
		PlanMbps:        170,
		CoverageScale:   3000,
		ComfortRatio:    40,
		CongestionScale: 220,
	}
	sort.Slice(m.launches, func(i, j int) bool { return m.launches[i].Day < m.launches[j].Day })
	sort.Slice(m.subscribers, func(i, j int) bool { return m.subscribers[i].Day < m.subscribers[j].Day })
	return m
}

// WithExtraLaunches returns a copy of the model with additional launches
// appended: the what-if primitive behind deployment planning (§6 — "could
// the operator change deployment plans given current deployment, footprint,
// and user sentiment?").
func (m *Model) WithExtraLaunches(extra []Launch) *Model {
	clone := *m
	clone.launches = append(append([]Launch(nil), m.launches...), extra...)
	sort.Slice(clone.launches, func(i, j int) bool { return clone.launches[i].Day < clone.launches[j].Day })
	return &clone
}

// ActiveSats returns the number of satellites in service on day d:
// the pre-window base plus every launched batch past its activation lag,
// with attrition.
func (m *Model) ActiveSats(d timeline.Day) int {
	total := float64(satsInServiceBefore2021)
	for _, l := range m.launches {
		if d-l.Day >= activationLagDays {
			total += float64(l.Sats) * (1 - attritionFrac)
		}
	}
	return int(total)
}

// LaunchesBetween counts launches in the inclusive day range.
func (m *Model) LaunchesBetween(from, to timeline.Day) int {
	n := 0
	for _, l := range m.launches {
		if l.Day >= from && l.Day <= to {
			n++
		}
	}
	return n
}

// Launches returns the schedule (shared slice; do not modify).
func (m *Model) Launches() []Launch { return m.launches }

// Users returns the subscriber count on day d, interpolated geometrically
// between milestones (subscriber growth is multiplicative).
func (m *Model) Users(d timeline.Day) float64 {
	subs := m.subscribers
	if len(subs) == 0 {
		return 0
	}
	if d <= subs[0].Day {
		return subs[0].Users
	}
	if d >= subs[len(subs)-1].Day {
		return subs[len(subs)-1].Users
	}
	i := sort.Search(len(subs), func(i int) bool { return subs[i].Day > d }) - 1
	a, b := subs[i], subs[i+1]
	frac := float64(d-a.Day) / float64(b.Day-a.Day)
	return a.Users * math.Pow(b.Users/a.Users, frac)
}

// MedianDownMbps returns the population-median downlink speed on day d.
//
// Two factors multiply the plan ceiling: coverage maturity (early, sparse
// shells leave gaps and beta-quality service; saturating in the satellite
// count) and congestion (per-cell contention once users-per-satellite
// exceeds a comfort threshold). The product rises while launches outpace
// subscribers and falls once subscribers win — Fig. 7's arc.
func (m *Model) MedianDownMbps(d timeline.Day) float64 {
	sats := float64(m.ActiveSats(d))
	users := m.Users(d)
	coverage := 1 - math.Exp(-sats/m.CoverageScale)
	x := users / math.Max(1, sats)
	congestion := 1.0
	if x > m.ComfortRatio {
		congestion = 1 / (1 + (x-m.ComfortRatio)/m.CongestionScale)
	}
	return m.PlanMbps * coverage * congestion
}

// UserSample is one user's momentary service performance.
type UserSample struct {
	DownMbps  float64
	UpMbps    float64
	LatencyMs float64
}

// SampleUser draws one user's speed-test result on day d: log-normal
// around the population median (terrain, cell load, weather), with uplink
// roughly an eighth of downlink and latency in the LEO 25–60 ms band,
// degrading slightly under congestion.
func (m *Model) SampleUser(r *simrand.RNG, d timeline.Day) UserSample {
	med := m.MedianDownMbps(d)
	down := r.LogNormalMeanMedian(med, 1.6)
	up := down / 8 * r.Range(0.7, 1.3)
	lat := r.LogNormalMeanMedian(38, 1.25)
	// Congestion inflates latency a little.
	if med < m.PlanMbps*0.4 {
		lat *= r.Range(1.05, 1.3)
	}
	return UserSample{
		DownMbps:  clampF(down, 1, 400),
		UpMbps:    clampF(up, 0.5, 60),
		LatencyMs: clampF(lat, 18, 150),
	}
}

func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
