package leo

import (
	"time"

	"usersignals/internal/simrand"
	"usersignals/internal/timeline"
)

// OutageScope classifies how widely an outage is felt.
type OutageScope int

// Outage scopes, smallest to largest.
const (
	ScopeLocal    OutageScope = iota // one cell / ground-station footprint
	ScopeRegional                    // one or a few countries
	ScopeGlobal                      // the whole network
)

// String names the scope.
func (s OutageScope) String() string {
	switch s {
	case ScopeLocal:
		return "local"
	case ScopeRegional:
		return "regional"
	case ScopeGlobal:
		return "global"
	default:
		return "unknown"
	}
}

// Outage is one service interruption.
type Outage struct {
	Day       timeline.Day
	Scope     OutageScope
	Hours     float64 // duration
	Countries int     // countries noticeably affected
	// Reported records whether mainstream coverage exists (feeds
	// newswire). Per the paper, only large incidents get press — and one
	// deliberately large one (22 Apr '22) does not.
	Reported bool
	Name     string
}

// Severity is a 0–1 impact weight used by the social generator to scale
// post volume.
func (o Outage) Severity() float64 {
	base := 0.15
	switch o.Scope {
	case ScopeRegional:
		base = 0.45
	case ScopeGlobal:
		base = 1.0
	}
	f := o.Hours / 6
	if f > 1 {
		f = 1
	}
	return base * (0.4 + 0.6*f)
}

// MajorOutages returns the anchor incidents of the study window:
// the two press-covered global outages the paper ties to Fig. 6's largest
// spikes, and the 22 Apr '22 incident that Redditors in 14 countries
// confirmed but no news reported (Fig. 5's third peak).
func MajorOutages() []Outage {
	return []Outage{
		{
			Day: timeline.Date(2022, time.January, 7), Scope: ScopeGlobal,
			Hours: 4, Countries: 30, Reported: true, Name: "january-global-outage",
		},
		{
			Day: timeline.Date(2022, time.April, 22), Scope: ScopeGlobal,
			Hours: 3, Countries: 14, Reported: false, Name: "april-unreported-outage",
		},
		{
			Day: timeline.Date(2022, time.August, 30), Scope: ScopeGlobal,
			Hours: 5, Countries: 28, Reported: true, Name: "august-global-outage",
		},
	}
}

// TransientOutages draws the background of small, unreported interruptions
// — satellite/earth geometry, weather, GEO-arc avoidance, deployment issues
// (§4.1) — as a seeded Poisson process over the window, averaging roughly
// perWeek events per week.
func TransientOutages(seed uint64, window timeline.Range, perWeek float64) []Outage {
	rng := simrand.Root(seed).Derive("leo/transient-outages").RNG()
	var out []Outage
	pDay := perWeek / 7
	window.Days(func(d timeline.Day) {
		n := rng.Poisson(pDay)
		for i := 0; i < n; i++ {
			scope := ScopeLocal
			countries := 1
			if rng.Bool(0.18) {
				scope = ScopeRegional
				countries = 1 + rng.Intn(4)
			}
			out = append(out, Outage{
				Day:       d,
				Scope:     scope,
				Hours:     0.2 + rng.Exponential(1.2),
				Countries: countries,
				Reported:  false,
				Name:      "transient",
			})
		}
	})
	return out
}

// AllOutages merges major and transient outages for a window, sorted by day.
func AllOutages(seed uint64, window timeline.Range, transientPerWeek float64) []Outage {
	out := TransientOutages(seed, window, transientPerWeek)
	for _, o := range MajorOutages() {
		if window.Contains(o.Day) {
			out = append(out, o)
		}
	}
	// Insertion sort by day (list is nearly sorted already).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Day < out[j-1].Day; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MilestoneKind labels non-outage events on the ISP timeline.
type MilestoneKind int

// Milestone kinds.
const (
	MilestonePreorder        MilestoneKind = iota // pre-ordering opens
	MilestoneDelay                                // delivery-delay notice
	MilestoneFeatureLeak                          // users discover a feature early
	MilestoneFeatureTweet                         // executive announces the feature
	MilestoneFeatureOfficial                      // official notification
)

// Milestone is a dated event with an expected sentiment polarity.
type Milestone struct {
	Day      timeline.Day
	Kind     MilestoneKind
	Name     string
	Positive bool
	// Strength scales how loudly the community reacts (post volume).
	Strength float64
}

// DefaultMilestones returns the §4.1 anchor events: the 9 Feb '21 pre-order
// opening (top positive peak), the 24 Nov '21 delivery-delay email (top
// negative peak), and the roaming-feature sequence — community discovery
// ~2 weeks before the CEO tweet, official notice ~3 months later.
func DefaultMilestones() []Milestone {
	return []Milestone{
		{Day: timeline.Date(2021, time.February, 9), Kind: MilestonePreorder, Name: "preorder-open", Positive: true, Strength: 1.0},
		{Day: timeline.Date(2021, time.November, 24), Kind: MilestoneDelay, Name: "delivery-delay-email", Positive: false, Strength: 0.95},
		{Day: timeline.Date(2022, time.February, 15), Kind: MilestoneFeatureLeak, Name: "roaming-discovered", Positive: true, Strength: 0.35},
		{Day: timeline.Date(2022, time.March, 3), Kind: MilestoneFeatureTweet, Name: "roaming-announced", Positive: true, Strength: 0.6},
		{Day: timeline.Date(2022, time.May, 30), Kind: MilestoneFeatureOfficial, Name: "portability-official", Positive: true, Strength: 0.4},
	}
}
