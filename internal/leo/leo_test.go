package leo

import (
	"testing"
	"time"

	"usersignals/internal/simrand"
	"usersignals/internal/stats"
	"usersignals/internal/timeline"
)

func d(y int, m time.Month, day int) timeline.Day { return timeline.Date(y, m, day) }

func TestActiveSatsGrowMonotonically(t *testing.T) {
	m := NewModel()
	prev := 0
	timeline.StarlinkWindow.Days(func(day timeline.Day) {
		n := m.ActiveSats(day)
		if n < prev {
			t.Fatalf("active sats decreased on %v: %d < %d", day, n, prev)
		}
		prev = n
	})
	if start := m.ActiveSats(d(2021, time.January, 1)); start < 900 || start > 1100 {
		t.Fatalf("start-of-window sats %d, want ~955", start)
	}
	if end := m.ActiveSats(d(2022, time.December, 31)); end < 2800 || end > 3800 {
		t.Fatalf("end-of-window sats %d, want ~3200", end)
	}
}

func TestActivationLag(t *testing.T) {
	m := NewModel()
	// The 20 Jan '21 launch should not serve until late March.
	before := m.ActiveSats(d(2021, time.January, 25))
	after := m.ActiveSats(d(2021, time.March, 25))
	if after <= before {
		t.Fatalf("launch never activated: %d vs %d", before, after)
	}
}

func TestLaunchesBetween(t *testing.T) {
	m := NewModel()
	// The paper: 14 launches Jan–Sep '21 (pre the September resumption).
	preGap := m.LaunchesBetween(d(2021, time.January, 1), d(2021, time.August, 31))
	if preGap != 14 {
		t.Fatalf("Jan-Aug '21 launches = %d, want 14", preGap)
	}
	// And 37 between Sep '21 and Dec '22.
	later := m.LaunchesBetween(d(2021, time.September, 1), d(2022, time.December, 31))
	if later != 37 {
		t.Fatalf("Sep'21-Dec'22 launches = %d, want 37", later)
	}
	// Jun-Aug '21: the gap (one tiny rideshare on 30 Jun aside).
	gap := m.LaunchesBetween(d(2021, time.July, 1), d(2021, time.August, 31))
	if gap != 0 {
		t.Fatalf("Jul-Aug '21 launches = %d, want 0", gap)
	}
}

func TestUsersInterpolation(t *testing.T) {
	m := NewModel()
	cases := []struct {
		day    timeline.Day
		lo, hi float64
	}{
		{d(2021, time.February, 1), 9000, 11000},
		{d(2021, time.August, 15), 80000, 100000},
		{d(2022, time.December, 19), 950000, 1050000},
	}
	for _, c := range cases {
		if got := m.Users(c.day); got < c.lo || got > c.hi {
			t.Fatalf("Users(%v) = %v, want in [%v, %v]", c.day, got, c.lo, c.hi)
		}
	}
	// Monotone growth.
	prev := 0.0
	timeline.StarlinkWindow.Days(func(day timeline.Day) {
		u := m.Users(day)
		if u < prev {
			t.Fatalf("users decreased on %v", day)
		}
		prev = u
	})
	// Clamped outside milestones.
	if m.Users(d(2019, time.January, 1)) != 5000 {
		t.Fatal("pre-window users should clamp to first milestone")
	}
	if m.Users(d(2024, time.January, 1)) != 1500000 {
		t.Fatal("post-window users should clamp to last milestone")
	}
}

func TestSpeedArcMatchesFig7(t *testing.T) {
	m := NewModel()
	sp := func(day timeline.Day) float64 { return m.MedianDownMbps(day) }

	feb21 := sp(d(2021, time.February, 15))
	sep21 := sp(d(2021, time.September, 15))
	dec21 := sp(d(2021, time.December, 15))
	apr21 := sp(d(2021, time.April, 15))
	mar22 := sp(d(2022, time.March, 15))
	dec22 := sp(d(2022, time.December, 15))

	// Rising phase: launches outpace users.
	if sep21 <= feb21*1.1 {
		t.Fatalf("speeds should rise Feb'21→Sep'21: %v → %v", feb21, sep21)
	}
	// Falling phase: users outpace launches.
	if dec22 >= sep21*0.85 {
		t.Fatalf("speeds should fall Sep'21→Dec'22: %v → %v", sep21, dec22)
	}
	// Fig. 7's conditioning anecdote requires Dec'21 > Apr'21.
	if dec21 <= apr21 {
		t.Fatalf("Dec'21 (%v) should exceed Apr'21 (%v)", dec21, apr21)
	}
	// And a monotone-ish decline Mar'22→Dec'22.
	if dec22 >= mar22 {
		t.Fatalf("Mar'22 (%v) → Dec'22 (%v) should decline", mar22, dec22)
	}
	// Sanity: plausible absolute range.
	if feb21 < 30 || feb21 > 120 || dec22 < 25 || dec22 > 100 {
		t.Fatalf("speeds outside plausible band: feb21=%v dec22=%v", feb21, dec22)
	}
}

func TestJunAugDip(t *testing.T) {
	// 21K users joined Jun–Aug '21 with no launches: speeds must dip.
	m := NewModel()
	jun := m.MedianDownMbps(d(2021, time.June, 10))
	aug := m.MedianDownMbps(d(2021, time.August, 25))
	if aug >= jun {
		t.Fatalf("no-launch period should dip: Jun %v → Aug %v", jun, aug)
	}
}

func TestSampleUserDistribution(t *testing.T) {
	m := NewModel()
	r := simrand.New(3, 14)
	day := d(2021, time.September, 15)
	med := m.MedianDownMbps(day)
	var downs, lats []float64
	for i := 0; i < 4000; i++ {
		s := m.SampleUser(r, day)
		if s.DownMbps < 1 || s.DownMbps > 400 || s.UpMbps < 0.5 || s.UpMbps > 60 ||
			s.LatencyMs < 18 || s.LatencyMs > 150 {
			t.Fatalf("sample out of bounds: %+v", s)
		}
		if s.UpMbps >= s.DownMbps {
			t.Fatalf("uplink %v >= downlink %v", s.UpMbps, s.DownMbps)
		}
		downs = append(downs, s.DownMbps)
		lats = append(lats, s.LatencyMs)
	}
	if gotMed := stats.Median(downs); gotMed < med*0.9 || gotMed > med*1.1 {
		t.Fatalf("sample median %v, model median %v", gotMed, med)
	}
	if latMed := stats.Median(lats); latMed < 25 || latMed > 60 {
		t.Fatalf("latency median %v outside LEO band", latMed)
	}
}

func TestMajorOutages(t *testing.T) {
	majors := MajorOutages()
	if len(majors) != 3 {
		t.Fatalf("want 3 anchor outages, got %d", len(majors))
	}
	var unreported int
	for _, o := range majors {
		if o.Scope != ScopeGlobal {
			t.Fatalf("major outage %q not global", o.Name)
		}
		if !o.Reported {
			unreported++
			if o.Day != d(2022, time.April, 22) {
				t.Fatalf("the unreported outage should be 22 Apr '22, got %v", o.Day)
			}
			if o.Countries < 14 {
				t.Fatalf("April outage should span 14+ countries, got %d", o.Countries)
			}
		}
	}
	if unreported != 1 {
		t.Fatalf("exactly one major outage should lack press coverage, got %d", unreported)
	}
}

func TestTransientOutages(t *testing.T) {
	w := timeline.StarlinkWindow
	outs := TransientOutages(1, w, 1.5)
	perWeek := float64(len(outs)) / (float64(w.Len()) / 7)
	if perWeek < 1.0 || perWeek > 2.0 {
		t.Fatalf("transient rate %v/week, want ~1.5", perWeek)
	}
	for _, o := range outs {
		if !w.Contains(o.Day) {
			t.Fatalf("outage outside window: %+v", o)
		}
		if o.Reported {
			t.Fatal("transient outages must be unreported")
		}
		if o.Scope == ScopeGlobal {
			t.Fatal("transient outages must not be global")
		}
		if o.Hours <= 0 {
			t.Fatalf("non-positive duration: %+v", o)
		}
	}
	// Deterministic under the same seed.
	again := TransientOutages(1, w, 1.5)
	if len(again) != len(outs) {
		t.Fatal("transient outages not deterministic")
	}
}

func TestAllOutagesSortedAndMerged(t *testing.T) {
	outs := AllOutages(2, timeline.StarlinkWindow, 1.5)
	var globals int
	for i, o := range outs {
		if i > 0 && o.Day < outs[i-1].Day {
			t.Fatal("outages not sorted")
		}
		if o.Scope == ScopeGlobal {
			globals++
		}
	}
	if globals != 3 {
		t.Fatalf("merged list has %d globals, want 3", globals)
	}
}

func TestSeverityOrdering(t *testing.T) {
	local := Outage{Scope: ScopeLocal, Hours: 2}
	regional := Outage{Scope: ScopeRegional, Hours: 2}
	global := Outage{Scope: ScopeGlobal, Hours: 2}
	if !(local.Severity() < regional.Severity() && regional.Severity() < global.Severity()) {
		t.Fatal("severity ordering broken")
	}
	long := Outage{Scope: ScopeLocal, Hours: 12}
	if long.Severity() <= local.Severity() {
		t.Fatal("longer outages should be more severe")
	}
	if global.Severity() > 1 {
		t.Fatalf("severity should cap at 1: %v", global.Severity())
	}
}

func TestMilestones(t *testing.T) {
	ms := DefaultMilestones()
	var leak, tweet, official *Milestone
	for i := range ms {
		switch ms[i].Kind {
		case MilestoneFeatureLeak:
			leak = &ms[i]
		case MilestoneFeatureTweet:
			tweet = &ms[i]
		case MilestoneFeatureOfficial:
			official = &ms[i]
		}
	}
	if leak == nil || tweet == nil || official == nil {
		t.Fatal("roaming sequence incomplete")
	}
	// The paper's lead times: discovery ~2 weeks before the tweet,
	// official notice ~3 months after.
	leadDays := int(tweet.Day - leak.Day)
	if leadDays < 10 || leadDays > 21 {
		t.Fatalf("leak lead time %d days, want ~14", leadDays)
	}
	officialLag := int(official.Day - tweet.Day)
	if officialLag < 60 || officialLag > 120 {
		t.Fatalf("official notice lag %d days, want ~90", officialLag)
	}
	if scope := (OutageScope(99)).String(); scope != "unknown" {
		t.Fatal("unknown scope string")
	}
}
