// Package leo models the deploying LEO constellation behind the §4 study: a
// launch schedule that grows capacity, a subscriber curve that grows demand,
// the per-user downlink speed that emerges from their ratio, and the outage
// and milestone events that drive user posts.
//
// The paper's Fig. 7 narrative is a capacity-versus-demand race: median
// user speeds rise while launches outpace subscribers (Jan–Sep '21, 14
// launches, 10K→90K users), dip sharply when 21K users join with no
// launches (Jun–Aug '21), and then fall almost steadily as subscribers grow
// 90K→1M+ against 37 launches (Sep '21–Dec '22). The model encodes that
// mechanism with a launch list and subscriber milestones shaped on the
// public record the paper cites, so the analysis pipeline can recover the
// curve (and its annotations) from generated speed-test posts.
package leo

import (
	"time"

	"usersignals/internal/timeline"
)

// Launch is one batch of satellites reaching orbit.
type Launch struct {
	Day  timeline.Day
	Sats int
}

// satsInServiceBefore2021 approximates the v1.0 shells deployed during
// 2019–2020 and already serving users at the study start.
const satsInServiceBefore2021 = 955

// activationLagDays is the time from launch to service. Historically orbit
// raising took weeks to months; the model uses a short lag because the
// paper's own Fig. 7 reasoning ("no new launches happening" directly
// explaining the Jun–Aug '21 dip) treats launches as serving promptly.
const activationLagDays = 14

// attritionFrac is the fraction of launched satellites that never enter or
// fall out of service.
const attritionFrac = 0.03

// DefaultLaunches returns the study-window launch schedule: 14 batches
// Jan–Sep '21 (with the Jun–Aug gap the paper highlights), then 37 batches
// through Dec '22.
func DefaultLaunches() []Launch {
	d := func(y int, m time.Month, day int) timeline.Day { return timeline.Date(y, m, day) }
	return []Launch{
		// 2021, pre-gap: 14 launches.
		{d(2021, 1, 20), 60}, {d(2021, 2, 4), 60}, {d(2021, 2, 16), 60},
		{d(2021, 3, 4), 60}, {d(2021, 3, 11), 60}, {d(2021, 3, 14), 60},
		{d(2021, 3, 24), 60}, {d(2021, 4, 7), 60}, {d(2021, 4, 29), 60},
		{d(2021, 5, 4), 60}, {d(2021, 5, 9), 60}, {d(2021, 5, 15), 52},
		{d(2021, 5, 26), 60}, {d(2021, 6, 30), 3},
		// Jun–Aug '21: no launches (the Fig. 7 dip).
		// Sep '21 – Dec '21.
		{d(2021, 9, 14), 51}, {d(2021, 11, 13), 53}, {d(2021, 12, 2), 48},
		{d(2021, 12, 18), 52},
		// 2022: roughly two to four batches a month.
		{d(2022, 1, 6), 49}, {d(2022, 1, 19), 49}, {d(2022, 2, 3), 49},
		{d(2022, 2, 21), 46}, {d(2022, 2, 25), 50}, {d(2022, 3, 3), 47},
		{d(2022, 3, 9), 48}, {d(2022, 3, 19), 53}, {d(2022, 4, 21), 53},
		{d(2022, 4, 29), 53}, {d(2022, 5, 6), 53}, {d(2022, 5, 13), 53},
		{d(2022, 5, 18), 53}, {d(2022, 6, 17), 53},
		{d(2022, 7, 7), 53}, {d(2022, 7, 11), 46}, {d(2022, 7, 17), 53},
		{d(2022, 7, 22), 46}, {d(2022, 8, 10), 52},
		{d(2022, 8, 12), 46}, {d(2022, 8, 19), 53}, {d(2022, 8, 28), 54},
		{d(2022, 8, 31), 46}, {d(2022, 9, 5), 51}, {d(2022, 9, 11), 34},
		{d(2022, 9, 19), 52}, {d(2022, 9, 24), 52}, {d(2022, 10, 5), 52},
		{d(2022, 10, 20), 54}, {d(2022, 10, 28), 53}, {d(2022, 11, 12), 54},
		{d(2022, 12, 17), 54}, {d(2022, 12, 28), 54},
	}
}

// SubscriberMilestone anchors the subscriber curve at a public report.
type SubscriberMilestone struct {
	Day   timeline.Day
	Users float64
}

// DefaultSubscribers returns the milestone list from the public record the
// paper cites (FCC filings, company statements, press).
func DefaultSubscribers() []SubscriberMilestone {
	d := func(y int, m time.Month, day int) timeline.Day { return timeline.Date(y, m, day) }
	return []SubscriberMilestone{
		{d(2020, 12, 1), 5000},
		{d(2021, 2, 1), 10000},
		{d(2021, 6, 25), 69420}, // the tweeted "strategically important threshold"
		{d(2021, 8, 15), 90000},
		{d(2022, 1, 15), 145000},
		{d(2022, 2, 14), 250000},
		{d(2022, 5, 15), 400000},
		{d(2022, 9, 15), 700000},
		{d(2022, 12, 19), 1000000},
		{d(2023, 5, 1), 1500000},
	}
}
