package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func mustAppend(t *testing.T, w *WAL, rec Record) uint64 {
	t.Helper()
	seq, err := w.Append(rec)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func rec(i int) Record {
	return Record{
		Type:    byte(1 + i%2),
		BatchID: fmt.Sprintf("batch-%04d", i),
		Payload: bytes.Repeat([]byte{byte(i)}, 37+i%113),
	}
}

func collect(t *testing.T, dir string, from uint64) ([]Record, ReplayInfo) {
	t.Helper()
	var out []Record
	info, err := Replay(dir, from, func(seq uint64, r Record) error {
		if seq != from+uint64(len(out)) {
			t.Fatalf("seq %d, want %d", seq, from+uint64(len(out)))
		}
		out = append(out, Record{Type: r.Type, BatchID: r.BatchID, Payload: append([]byte(nil), r.Payload...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, info
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if got := mustAppend(t, w, rec(i)); got != uint64(i) {
			t.Fatalf("append %d got seq %d", i, got)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir, 0)
	if len(got) != n || info.Torn || info.NextSeq != n {
		t.Fatalf("replayed %d torn=%v next=%d", len(got), info.Torn, info.NextSeq)
	}
	for i, r := range got {
		want := rec(i)
		if r.Type != want.Type || r.BatchID != want.BatchID || !bytes.Equal(r.Payload, want.Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Replay from the middle skips the prefix.
	tail, _ := collect(t, dir, 10)
	if len(tail) != n-10 || tail[0].BatchID != rec(10).BatchID {
		t.Fatalf("tail replay got %d records", len(tail))
	}
}

func TestWALSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := 0; i < n; i++ {
		mustAppend(t, w, rec(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected rotation, got %d segments", len(segs))
	}
	got, info := collect(t, dir, 0)
	if len(got) != n || info.NextSeq != n {
		t.Fatalf("replayed %d across %d segments", len(got), len(segs))
	}
	// Re-open continues the sequence where the log left off.
	w2, err := OpenWAL(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if seq := mustAppend(t, w2, rec(n)); seq != n {
		t.Fatalf("resumed at seq %d, want %d", seq, n)
	}
	w2.Close()
}

func TestWALTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	var boundaries []int64
	for i := 0; i < n; i++ {
		mustAppend(t, w, rec(i))
		boundaries = append(boundaries, w.segSize)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := segmentPath(dir, 0)
	whole, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate the single segment at every byte offset: recovery must
	// never error, and must yield exactly the records whose frames fit.
	for cut := int64(0); cut <= int64(len(whole)); cut++ {
		sub := filepath.Join(t.TempDir(), "cut")
		if err := os.MkdirAll(sub, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(segPath)), whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs := 0
		for _, b := range boundaries {
			if b <= cut {
				wantRecs++
			}
		}
		got, info := collect(t, sub, 0)
		if len(got) != wantRecs {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(got), wantRecs)
		}
		atBoundary := cut == 0
		for _, b := range boundaries {
			if b == cut {
				atBoundary = true
			}
		}
		if atBoundary && info.Torn {
			t.Fatalf("cut %d at frame boundary reported torn", cut)
		}
		if !atBoundary && !info.Torn {
			t.Fatalf("cut %d mid-frame not reported torn", cut)
		}
		// Opening for append after the tear truncates and continues.
		w2, err := OpenWAL(sub, 0, Options{})
		if err != nil {
			t.Fatalf("cut %d: open after tear: %v", cut, err)
		}
		if w2.Seq() != uint64(wantRecs) {
			t.Fatalf("cut %d: reopened at seq %d, want %d", cut, w2.Seq(), wantRecs)
		}
		mustAppend(t, w2, rec(99))
		w2.Close()
		got2, info2 := collect(t, sub, 0)
		if len(got2) != wantRecs+1 || info2.Torn {
			t.Fatalf("cut %d: after append replayed %d torn=%v", cut, len(got2), info2.Torn)
		}
	}
}

func TestWALBitFlipDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		mustAppend(t, w, rec(i))
	}
	w.Close()
	path := segmentPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir, 0)
	if len(got) >= 3 {
		t.Fatal("bit flip not detected")
	}
	if !info.Torn {
		t.Fatal("flip in final segment should read as torn tail")
	}
}

func TestReplayCorruptInteriorSegment(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, w, rec(i))
	}
	w.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments (err=%v)", err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[5] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, 0, func(uint64, Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior corruption returned %v, want ErrCorrupt", err)
	}
}

func writeSnap(t *testing.T, dir string, seq uint64, body string) {
	t.Helper()
	if err := WriteSnapshot(dir, seq, func(w io.Writer) error {
		_, err := io.WriteString(w, body)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRoundTripAndFallback(t *testing.T) {
	dir := t.TempDir()
	if _, _, found, err := LoadLatestSnapshot(dir); err != nil || found {
		t.Fatalf("empty dir: found=%v err=%v", found, err)
	}
	writeSnap(t, dir, 10, "state at ten")
	writeSnap(t, dir, 20, "state at twenty")
	seq, body, found, err := LoadLatestSnapshot(dir)
	if err != nil || !found || seq != 20 || string(body) != "state at twenty" {
		t.Fatalf("got seq=%d body=%q found=%v err=%v", seq, body, found, err)
	}
	// Corrupt the newest: recovery falls back to the older one.
	data, err := os.ReadFile(snapshotPath(dir, 20))
	if err != nil {
		t.Fatal(err)
	}
	data[0] ^= 0xff
	if err := os.WriteFile(snapshotPath(dir, 20), data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, body, found, err = LoadLatestSnapshot(dir)
	if err != nil || !found || seq != 10 || string(body) != "state at ten" {
		t.Fatalf("fallback got seq=%d body=%q found=%v err=%v", seq, body, found, err)
	}
	// A leftover .tmp is ignored by load and removed by OpenWAL.
	tmp := filepath.Join(dir, "snap-00000000000000ff.tmp")
	if err := os.WriteFile(tmp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := LoadLatestSnapshot(dir); err != nil {
		t.Fatal(err)
	}
	w, err := OpenWAL(dir, 10, Options{})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("leftover .tmp not cleaned up")
	}
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, w, rec(i))
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	snapSeq := w.Seq()
	writeSnap(t, dir, 5, "older")
	writeSnap(t, dir, snapSeq, "full")
	if err := w.Compact(snapSeq); err != nil {
		t.Fatal(err)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("compaction kept %d of %d segments", len(after), len(segs))
	}
	if snaps, _ := listSnapshots(dir); len(snaps) != 1 || snaps[0] != snapSeq {
		t.Fatalf("snapshot compaction kept %v", snaps)
	}
	// Replay from the snapshot's seq still works over what's left.
	got, info := collect(t, dir, snapSeq)
	if len(got) != 0 || info.NextSeq != snapSeq || info.Torn {
		t.Fatalf("post-compaction replay: %d records next=%d", len(got), info.NextSeq)
	}
	// And appends continue seamlessly.
	mustAppend(t, w, rec(12))
	w.Close()
	got, _ = collect(t, dir, snapSeq)
	if len(got) != 1 {
		t.Fatalf("append after compaction: replayed %d", len(got))
	}
}

func TestOpenWALStartsAtSnapshotSeq(t *testing.T) {
	// Log torn away to before the snapshot's coverage: appends must not
	// reuse sequences the snapshot claims.
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, w, rec(i))
	}
	w.Close()
	writeSnap(t, dir, 4, "covers all four")
	// Simulate losing the whole segment (e.g. compacted, then crash).
	if err := os.Remove(segmentPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seq := mustAppend(t, w2, rec(4)); seq != 4 {
		t.Fatalf("appended at seq %d, want 4", seq)
	}
	w2.Close()
	got, _ := collect(t, dir, 4)
	if len(got) != 1 || got[0].BatchID != rec(4).BatchID {
		t.Fatalf("replay from snapshot seq got %d records", len(got))
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
	}{{"batch", FsyncPerBatch}, {"", FsyncPerBatch}, {"interval", FsyncInterval}, {"off", FsyncOff}} {
		got, err := ParseFsyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseFsyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("round trip %q -> %q", tc.in, got.String())
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
