package durable

import (
	"fmt"
	"os"
	"path/filepath"
)

// ReplayInfo summarizes what a replay saw, for recovery logging and the
// crash-recovery tests.
type ReplayInfo struct {
	// NextSeq is the sequence after the last replayed record — the point
	// the log's intact prefix reaches.
	NextSeq uint64
	// Replayed counts records delivered to the callback (≥ fromSeq only).
	Replayed int
	// Torn reports that the last segment ended in a torn or truncated
	// frame, which was discarded.
	Torn bool
	// TornBytes is the size of the discarded tail when Torn.
	TornBytes int64
}

// Replay walks the log in sequence order, invoking fn for every record
// with seq ≥ fromSeq (records a snapshot already covers are skipped
// without decoding cost beyond the frame walk). Record slices passed to fn
// alias the segment buffer and must not be retained.
//
// A CRC-invalid or incomplete frame at the end of the final segment is a
// torn tail: replay stops cleanly there and reports it. The same damage in
// any earlier segment returns ErrCorrupt — crash semantics cannot produce
// it, so recovery must not silently drop interior history. A non-final
// segment whose last frame ends short is likewise corrupt.
func Replay(dir string, fromSeq uint64, fn func(seq uint64, rec Record) error) (ReplayInfo, error) {
	var info ReplayInfo
	info.NextSeq = fromSeq
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return info, nil
		}
		return info, err
	}
	if len(segs) == 0 {
		return info, nil
	}
	for i, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			return info, fmt.Errorf("durable: reading segment: %w", err)
		}
		final := i == len(segs)-1
		seq := s.firstSeq
		off := 0
		for off < len(data) {
			rec, n, ok := parseFrame(data[off:])
			if !ok {
				if !final {
					return info, corruptErr(s, seq, off)
				}
				info.Torn = true
				info.TornBytes = int64(len(data) - off)
				info.NextSeq = seq
				return info, nil
			}
			if seq >= fromSeq {
				if err := fn(seq, rec); err != nil {
					return info, err
				}
				info.Replayed++
			}
			seq++
			off += n
		}
		// Sanity: segment names must agree with frame counts, or replay
		// would assign wrong sequences from here on.
		if !final && segs[i+1].firstSeq != seq {
			return info, fmt.Errorf("%w: segment %s holds %d records (seqs %d-%d) but next segment starts at %d",
				ErrCorrupt, filepath.Base(s.path), seq-s.firstSeq, s.firstSeq, seq-1, segs[i+1].firstSeq)
		}
		info.NextSeq = seq
	}
	if info.NextSeq < fromSeq {
		info.NextSeq = fromSeq
	}
	return info, nil
}

// FrameBoundaries returns the byte offset just past each valid frame in a
// raw segment. Crash-injection tests use it to truncate a log at every
// frame boundary (and anywhere between) and assert recovery replays
// exactly the frames that survived whole.
func FrameBoundaries(data []byte) []int64 {
	var bounds []int64
	off := 0
	for {
		_, n, ok := parseFrame(data[off:])
		if !ok {
			return bounds
		}
		off += n
		bounds = append(bounds, int64(off))
	}
}
