package durable

import (
	"fmt"
	"sync"
	"time"
)

// Group commit: the fix for fsync=batch paying one fsync per acknowledged
// batch. Appenders write their frames serially under the WAL mutex exactly
// as before — the log bytes are byte-identical to serial appends — but
// instead of each append syncing and returning, it receives a Ticket and
// the frame joins the committer's pending group. A single scheduler
// goroutine seals the group, issues ONE fsync covering every frame in it,
// and resolves all their tickets together. While that fsync is in flight,
// newly arriving appends pile into the next group, so under concurrency the
// group size grows to match the fsync latency: N clients pay ~one fsync per
// group instead of N.
//
// The durability contract is unchanged: a ticket resolves (and the batch
// may be acknowledged) only after an fsync whose write set covers the
// frame completes. A lone appender's group has size one and costs exactly
// what a serial fsync=batch append costs.

// Ticket is a commit promise handed out by AppendAsync: it resolves once
// the fsync covering the appended frame has completed (or failed).
type Ticket struct {
	done chan struct{}
	err  error
}

func newTicket() *Ticket { return &Ticket{done: make(chan struct{})} }

// resolvedTicket returns an already-resolved ticket, used when the append
// was synchronously durable (or the fsync policy does not require a sync
// before acknowledgement).
func resolvedTicket(err error) *Ticket {
	t := newTicket()
	t.err = err
	close(t.done)
	return t
}

// Done returns a channel closed when the ticket resolves.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the covering fsync completes and returns its error.
func (t *Ticket) Wait() error {
	<-t.done
	return t.err
}

// Resolved reports whether the ticket has already resolved (non-blocking).
func (t *Ticket) Resolved() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// CommitMetrics describes the scheduler's behavior for /v1/stats and the
// load harness. Histogram buckets count groups by size:
// 1, 2, 3-4, 5-8, 9-16, 17-32, >32.
type CommitMetrics struct {
	// Groups counts completed commit groups (fsyncs issued).
	Groups uint64
	// Batches counts frames those groups covered; Batches/Groups is the
	// mean amortization factor.
	Batches uint64
	// MaxGroup is the largest group committed so far.
	MaxGroup uint64
	// GroupSizeHist buckets groups by size: 1, 2, 3-4, 5-8, 9-16, 17-32, >32.
	GroupSizeHist [7]uint64
	// QueueDepth is the number of frames currently awaiting their fsync.
	QueueDepth int
	// FsyncCount/FsyncTotalNs/FsyncMaxNs describe group fsync latency.
	FsyncCount   uint64
	FsyncTotalNs uint64
	FsyncMaxNs   uint64
}

// sizeBucket maps a group size to its GroupSizeHist index.
func sizeBucket(n int) int {
	switch {
	case n <= 1:
		return 0
	case n == 2:
		return 1
	case n <= 4:
		return 2
	case n <= 8:
		return 3
	case n <= 16:
		return 4
	case n <= 32:
		return 5
	default:
		return 6
	}
}

// committer is the group-commit scheduler: one goroutine that drains the
// pending ticket list, fsyncs once per drain, and resolves the group.
type committer struct {
	w        *WAL
	maxBytes int64
	maxDelay time.Duration

	mu           sync.Mutex
	pending      []*Ticket
	pendingBytes int64
	pendingSince time.Time // enqueue instant of the oldest pending frame
	failed       error     // sticky: a failed group fsync poisons the scheduler
	metrics      CommitMetrics

	wake chan struct{} // buffered(1): appenders signal new work
	stop chan struct{}
	done chan struct{}
}

func newCommitter(w *WAL, opts Options) *committer {
	c := &committer{
		w:        w,
		maxBytes: opts.MaxGroupBytes,
		maxDelay: opts.MaxGroupDelay,
		wake:     make(chan struct{}, 1),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go c.run()
	return c
}

// errState returns the sticky fsync failure, if any. Checked by appends so
// a poisoned log rejects new batches instead of acknowledging writes it can
// no longer promise to persist.
func (c *committer) errState() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failed
}

// enqueue registers a written frame's ticket with the current group.
// Called under the WAL mutex, after the frame's write completed — so by
// the time a ticket is visible to the scheduler, its bytes are in the file.
func (c *committer) enqueue(t *Ticket, frameBytes int64) {
	c.mu.Lock()
	if len(c.pending) == 0 {
		c.pendingSince = time.Now()
	}
	c.pending = append(c.pending, t)
	c.pendingBytes += frameBytes
	c.mu.Unlock()
	select {
	case c.wake <- struct{}{}:
	default: // scheduler already signaled
	}
}

// shutdown flushes every pending group and stops the scheduler goroutine.
func (c *committer) shutdown() {
	close(c.stop)
	<-c.done
}

func (c *committer) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stop:
			c.flush()
			return
		case <-c.wake:
		}
		if c.maxDelay > 0 {
			c.linger()
		}
		c.flush()
	}
}

// linger holds the group open for up to maxDelay after its FIRST frame was
// enqueued, sealing early once pending bytes reach maxBytes. The deadline is
// anchored on pendingSince, not on the scheduler waking up: frames that
// arrived while the previous group's fsync was in flight have already waited
// that fsync out, and restarting a full maxDelay for them was the group-commit
// p999 tail (worst ticket wait was fsync + rotation + maxDelay; now it is
// capped at maxDelay past enqueue plus one fsync). With maxDelay = 0 (the
// default) groups form naturally: whatever accumulates while the previous
// fsync is in flight commits together.
func (c *committer) linger() {
	timer := time.NewTimer(c.maxDelay)
	defer timer.Stop()
	for {
		c.mu.Lock()
		full := c.pendingBytes >= c.maxBytes
		var wait time.Duration
		if len(c.pending) > 0 {
			wait = c.maxDelay - time.Since(c.pendingSince)
		}
		c.mu.Unlock()
		if full || wait <= 0 {
			return
		}
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(wait)
		select {
		case <-timer.C:
			return
		case <-c.stop:
			return
		case <-c.wake: // another frame arrived; keep growing the group
		}
	}
}

// flush seals the current group, issues its fsync, and resolves every
// ticket in it. Frames that arrive after the seal join the next group —
// their writes may incidentally be covered by this fsync, which only makes
// their own sync redundant, never unsafe.
func (c *committer) flush() {
	c.mu.Lock()
	tickets := c.pending
	c.pending = nil
	c.pendingBytes = 0
	err := c.failed
	c.mu.Unlock()
	if len(tickets) == 0 {
		return
	}
	var el time.Duration
	if err == nil {
		start := time.Now()
		err = c.w.groupSync()
		el = time.Since(start)
	}
	c.mu.Lock()
	if err != nil && c.failed == nil {
		c.failed = err
	}
	m := &c.metrics
	m.Groups++
	m.Batches += uint64(len(tickets))
	if uint64(len(tickets)) > m.MaxGroup {
		m.MaxGroup = uint64(len(tickets))
	}
	m.GroupSizeHist[sizeBucket(len(tickets))]++
	if el > 0 {
		m.FsyncCount++
		m.FsyncTotalNs += uint64(el.Nanoseconds())
		if uint64(el.Nanoseconds()) > m.FsyncMaxNs {
			m.FsyncMaxNs = uint64(el.Nanoseconds())
		}
	}
	c.mu.Unlock()
	if err != nil {
		err = fmt.Errorf("durable: group fsync: %w", err)
	}
	for _, t := range tickets {
		t.err = err
		close(t.done)
	}
}

// snapshotMetrics copies the metrics with the live queue depth filled in.
func (c *committer) snapshotMetrics() CommitMetrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.metrics
	m.QueueDepth = len(c.pending)
	return m
}
