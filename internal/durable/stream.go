package durable

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// This file is the read side of WAL shipping: a leader (or any replica —
// every node's log is byte-identical by construction) serves raw frame
// bytes from its segments, and a follower re-verifies the CRCs and applies
// the records through the normal ingest path. Frames are shipped verbatim:
// the receiver checks exactly the bytes the sender's crash recovery would
// check, so a replication link cannot smuggle damage past the same CRC
// that guards the disk.

// ErrCompacted reports that the requested sequence has been compacted
// away: a snapshot covered it and its segment was deleted. The caller must
// bootstrap from a snapshot instead of tailing the log.
var ErrCompacted = errors.New("durable: requested frames compacted away")

// Frames is one chunk of the replication feed: verbatim frame bytes for a
// contiguous run of records.
type Frames struct {
	// From is the sequence of the first frame in Raw.
	From uint64
	// Count is the number of complete frames in Raw.
	Count int
	// Raw holds the frames exactly as they sit in the log; the receiver
	// can CRC-check them with IterFrames or FrameBoundaries.
	Raw []byte
	// Next is From + Count — the sequence to request next.
	Next uint64
	// OldestAvailable is the first sequence still on disk; a request below
	// it returns ErrCompacted.
	OldestAvailable uint64
}

// ReadFrames returns up to maxBytes of raw frames starting at sequence
// from (always at least one whole frame when any is available; frames are
// never split). An empty result with Next == from means the log ends at
// from — the caller should wait for appends and retry. Safe to call while
// a WAL in the same directory is appending: a partially written tail frame
// fails its CRC and is simply not shipped yet.
func ReadFrames(dir string, from uint64, maxBytes int) (Frames, error) {
	out := Frames{From: from, Next: from}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	segs, err := listSegments(dir)
	if err != nil {
		return out, err
	}
	if len(segs) == 0 {
		out.OldestAvailable = from
		return out, nil
	}
	out.OldestAvailable = segs[0].firstSeq
	if from < segs[0].firstSeq {
		return out, fmt.Errorf("%w: want seq %d, oldest on disk is %d", ErrCompacted, from, segs[0].firstSeq)
	}
	// Skip segments wholly before from without reading them.
	start := 0
	for start+1 < len(segs) && segs[start+1].firstSeq <= from {
		start++
	}
	for i := start; i < len(segs); i++ {
		s := segs[i]
		data, err := os.ReadFile(s.path)
		if err != nil {
			return out, fmt.Errorf("durable: reading segment: %w", err)
		}
		final := i == len(segs)-1
		seq := s.firstSeq
		off := 0
		for off < len(data) {
			_, n, ok := parseFrame(data[off:])
			if !ok {
				if !final {
					return out, corruptErr(s, seq, off)
				}
				// Unfinished tail frame: not shipped until complete.
				return out, nil
			}
			if seq >= from {
				if out.Count > 0 && len(out.Raw)+n > maxBytes {
					return out, nil
				}
				if out.Count == 0 {
					out.From = seq
					out.Next = seq
				}
				out.Raw = append(out.Raw, data[off:off+n]...)
				out.Count++
				out.Next = seq + 1
			}
			seq++
			off += n
		}
	}
	return out, nil
}

// IterFrames walks raw frame bytes (as shipped by ReadFrames), calling fn
// for each CRC-valid frame in order. It stops at the first invalid or
// incomplete frame — on a replication link that is a truncated delivery,
// and the receiver simply re-requests from where it got to. Returns the
// number of frames delivered to fn and the byte offset consumed. A non-nil
// error is fn's, returned as-is.
//
// Record slices passed to fn alias data and must not be retained.
func IterFrames(data []byte, fn func(rec Record) error) (frames int, consumed int64, err error) {
	off := 0
	for off < len(data) {
		rec, n, ok := parseFrame(data[off:])
		if !ok {
			break
		}
		if err := fn(rec); err != nil {
			return frames, int64(off), err
		}
		frames++
		off += n
	}
	return frames, int64(off), nil
}

// corruptErr formats the ErrCorrupt family uniformly: segment filename,
// frame index within the segment, and byte offset — enough for an operator
// to locate the damage without a hex dump.
func corruptErr(s segment, seq uint64, off int) error {
	return fmt.Errorf("%w: segment %s frame %d (seq %d) at byte offset %d fails CRC",
		ErrCorrupt, filepath.Base(s.path), seq-s.firstSeq, seq, off)
}

// HasState reports whether dir holds any durable state (log segments or
// snapshots). A follower with no state bootstraps from the leader's
// newest snapshot before opening its store.
func HasState(dir string) (bool, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return false, err
	}
	if len(segs) > 0 {
		return true, nil
	}
	snaps, err := listSnapshots(dir)
	if err != nil {
		return false, err
	}
	return len(snaps) > 0, nil
}
