package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// WAL is the append side of the log. Safe for concurrent use, though the
// USaaS store already serializes appends under its write lock (append
// order must equal apply order for replay to reproduce the store
// byte-for-byte).
type WAL struct {
	mu       sync.Mutex
	dir      string
	opts     Options
	f        *os.File // active segment
	segStart uint64   // seq of the active segment's first record
	segSize  int64    // bytes written to the active segment
	seq      uint64   // next record's sequence number
	buf      []byte   // reusable frame-encoding buffer
	closed   bool

	// gc is the group-commit scheduler (commit.go); non-nil only when
	// Options.GroupCommit is set under FsyncPerBatch. retired holds
	// segments rotated out while the scheduler may have a sync in flight:
	// rotation syncs them (so their frames are durable) but defers the
	// close to the scheduler, which releases them after its next group
	// sync — closing a file another goroutine is fsyncing is an error.
	gc      *committer
	retired []*os.File
}

// segment is one on-disk log file.
type segment struct {
	path     string
	firstSeq uint64
}

// listSegments returns the dir's segments sorted by first sequence.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		// A data dir that doesn't exist yet holds no segments; recovery
		// lists the log before the append-side open creates the directory.
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: reading log dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
		first, err := strconv.ParseUint(seqStr, 16, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", firstSeq))
}

// OpenWAL opens dir's log for appending, creating the directory as needed.
// It scans the last segment for a torn tail and truncates it, so appends
// always continue at a CRC-valid frame boundary. minSeq is the sequence
// the newest snapshot covers: if the surviving log ends short of it (the
// tail past the snapshot was torn away), a fresh segment starts at minSeq
// so that record sequences never fall behind snapshot coverage.
func OpenWAL(dir string, minSeq uint64, opts Options) (*WAL, error) {
	w, err := openWAL(dir, minSeq, opts)
	if err != nil {
		return nil, err
	}
	// The scheduler goroutine attaches only once the open succeeded, so
	// error paths above never leak it.
	if w.opts.GroupCommit && w.opts.Fsync == FsyncPerBatch {
		w.gc = newCommitter(w, w.opts)
	}
	return w, nil
}

func openWAL(dir string, minSeq uint64, opts Options) (*WAL, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: creating log dir: %w", err)
	}
	removeTemp(dir)
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, opts: opts}
	if len(segs) == 0 {
		w.seq = minSeq
		w.segStart = minSeq
		return w, nil
	}
	last := segs[len(segs)-1]
	data, err := os.ReadFile(last.path)
	if err != nil {
		return nil, fmt.Errorf("durable: reading last segment: %w", err)
	}
	valid, count := scanFrames(data)
	if valid < int64(len(data)) {
		// Torn tail: truncate to the last valid frame boundary so the
		// next append does not concatenate onto garbage.
		if err := os.Truncate(last.path, valid); err != nil {
			return nil, fmt.Errorf("durable: truncating torn tail: %w", err)
		}
	}
	w.seq = last.firstSeq + uint64(count)
	w.segStart = last.firstSeq
	w.segSize = valid
	if w.seq < minSeq {
		// The log ends before the snapshot's coverage; appending here
		// would assign sequences the snapshot already claims. Start a new
		// segment at minSeq (the old one will be compacted away).
		w.seq = minSeq
		w.segStart = minSeq
		w.segSize = 0
		return w, nil
	}
	f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: opening segment for append: %w", err)
	}
	w.f = f
	return w, nil
}

// scanFrames walks data frame by frame, returning the byte offset of the
// last valid frame boundary and the number of valid frames.
func scanFrames(data []byte) (valid int64, count uint64) {
	off := 0
	for {
		_, n, ok := parseFrame(data[off:])
		if !ok {
			return int64(off), count
		}
		off += n
		count++
	}
}

// Seq returns the next record's sequence number — equivalently, the count
// of records ever appended (plus any snapshot-covered prefix the log
// started after).
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// Append frames the record, writes it to the active segment with a single
// write call, and — under FsyncPerBatch — waits until it is forced to
// stable storage before returning. Returns the record's sequence number.
// With group commit enabled the wait shares one fsync with every other
// append in the same group; the log bytes are identical either way.
func (w *WAL) Append(rec Record) (seq uint64, err error) {
	seq, t, err := w.AppendAsync(rec)
	if err != nil {
		return 0, err
	}
	return seq, t.Wait()
}

// AppendAsync frames the record and writes it to the active segment, but
// does not wait for durability: the returned Ticket resolves once an fsync
// covering the frame completes. Without the group-commit scheduler (or
// under the interval/off policies, where acknowledgement never waits on a
// sync) the ticket is already resolved when AppendAsync returns, so callers
// can treat the two shapes uniformly: append, then Wait before
// acknowledging.
func (w *WAL) AppendAsync(rec Record) (seq uint64, t *Ticket, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, nil, fmt.Errorf("durable: append on closed WAL")
	}
	if w.gc != nil {
		// A failed group fsync poisons the log: the store can no longer
		// promise durability, so reject new batches instead of queueing
		// tickets that can only resolve with the same error.
		if err := w.gc.errState(); err != nil {
			return 0, nil, fmt.Errorf("durable: group commit poisoned: %w", err)
		}
	}
	w.buf = appendFrame(w.buf[:0], rec)
	if w.f != nil && w.segSize > 0 && w.segSize+int64(len(w.buf)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, nil, err
		}
	}
	if w.f == nil {
		f, err := os.OpenFile(segmentPath(w.dir, w.segStart), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
		if err != nil {
			return 0, nil, fmt.Errorf("durable: creating segment: %w", err)
		}
		w.f = f
	}
	if _, err := w.f.Write(w.buf); err != nil {
		return 0, nil, fmt.Errorf("durable: appending record: %w", err)
	}
	w.segSize += int64(len(w.buf))
	seq = w.seq
	w.seq++
	if w.gc != nil {
		// The frame is fully written; hand its ticket to the scheduler.
		// Registration happens under w.mu, so a group gathered by the
		// scheduler only ever contains fully-written frames.
		t = newTicket()
		w.gc.enqueue(t, int64(len(w.buf)))
		return seq, t, nil
	}
	if w.opts.Fsync == FsyncPerBatch {
		if err := w.f.Sync(); err != nil {
			return 0, nil, fmt.Errorf("durable: fsync: %w", err)
		}
	}
	return seq, resolvedTicket(nil), nil
}

// groupSync forces every frame written so far to stable storage on behalf
// of a commit group: retired segments first (rotation defers their final
// sync to here), then the active segment, then the retired descriptors are
// released. The handles are captured under w.mu but the fsyncs themselves
// run outside it, so appends keep flowing into the next group while this
// one commits. Rotation never closes a file while the scheduler is attached
// (it retires it instead), so the captured handles stay valid.
func (w *WAL) groupSync() error {
	w.mu.Lock()
	f := w.f
	retired := w.retired
	w.retired = nil
	w.mu.Unlock()
	var err error
	for _, rf := range retired {
		// A retired segment holds frames from groups still pending, so it
		// must reach stable storage before any ticket in them resolves.
		if serr := rf.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("durable: syncing retired segment: %w", serr)
		}
	}
	if f != nil {
		if serr := f.Sync(); serr != nil && err == nil {
			err = serr
		}
	}
	for _, rf := range retired {
		if cerr := rf.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("durable: closing retired segment: %w", cerr)
		}
	}
	return err
}

// rotateLocked closes the active segment and arranges for the next append
// to start a new one whose name is the next sequence. Without the group
// scheduler the closing segment is fsynced inline (except under FsyncOff,
// where durability is explicitly left to the OS writeback — syncing 8 MiB
// at every rotation would make the "off" policy pay the largest fsyncs of
// any mode). With the scheduler attached the sync is deferred too: the
// handle is parked unsynced in retired and the NEXT group sync flushes it
// before resolving any ticket — a full-segment fsync on the append critical
// path, under w.mu, was the dominant group-commit p999 spike (every
// concurrent append stalled behind an 8 MiB sync at each rotation).
func (w *WAL) rotateLocked() error {
	if w.f != nil {
		if w.gc != nil {
			// The scheduler may be fsyncing this handle outside w.mu right
			// now; park it for the scheduler, which syncs retired segments
			// ahead of the active one and closes them after the group sync.
			w.retired = append(w.retired, w.f)
		} else {
			if w.opts.Fsync != FsyncOff {
				if err := w.f.Sync(); err != nil {
					return fmt.Errorf("durable: fsync before rotate: %w", err)
				}
			}
			if err := w.f.Close(); err != nil {
				return fmt.Errorf("durable: closing segment: %w", err)
			}
		}
		w.f = nil
	}
	w.segStart = w.seq
	w.segSize = 0
	return nil
}

// Sync forces appended frames to stable storage (a no-op when nothing is
// open). Drives the FsyncInterval policy and shutdown flushes. Retired
// segments are synced too: with the group scheduler attached, rotation
// defers their final sync.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, rf := range w.retired {
		if err := rf.Sync(); err != nil {
			return fmt.Errorf("durable: fsync retired segment: %w", err)
		}
	}
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("durable: fsync: %w", err)
	}
	return nil
}

// Compact removes closed segments wholly covered by a snapshot at seq:
// a segment is deletable when the next segment starts at or before seq
// (so every record in it is < seq) and it is not the active segment. Old
// snapshots below seq are removed too, keeping one newer-or-equal.
func (w *WAL) Compact(seq uint64) error {
	w.mu.Lock()
	active := w.segStart
	w.mu.Unlock()
	segs, err := listSegments(w.dir)
	if err != nil {
		return err
	}
	for i, s := range segs {
		if s.firstSeq == active || i == len(segs)-1 {
			break
		}
		if segs[i+1].firstSeq > seq {
			break
		}
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("durable: removing compacted segment: %w", err)
		}
	}
	return compactSnapshots(w.dir, seq)
}

// CommitMetrics reports the group-commit scheduler's counters; ok is false
// when the scheduler is not attached (group commit off, or a non-per-batch
// fsync policy).
func (w *WAL) CommitMetrics() (m CommitMetrics, ok bool) {
	if w.gc == nil {
		return CommitMetrics{}, false
	}
	return w.gc.snapshotMetrics(), true
}

// Close flushes any pending commit groups, then fsyncs and closes the
// active segment. Safe to call twice.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()
	if w.gc != nil {
		// Resolve every outstanding ticket (one final group fsync) and stop
		// the scheduler before touching the files it may be syncing.
		w.gc.shutdown()
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var errs error
	for _, rf := range w.retired {
		// With the scheduler attached, a retired segment may still be
		// unsynced if no group flush ran after its rotation.
		if err := rf.Sync(); err != nil && errs == nil {
			errs = fmt.Errorf("durable: fsync retired segment on close: %w", err)
		}
		if err := rf.Close(); err != nil && errs == nil {
			errs = fmt.Errorf("durable: closing retired segment: %w", err)
		}
	}
	w.retired = nil
	if w.f == nil {
		return errs
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("durable: fsync on close: %w", err)
	}
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("durable: closing segment: %w", err)
	}
	w.f = nil
	return errs
}
