package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot files: an opaque body (the USaaS layer writes NDJSON sections)
// followed by an 8-byte trailer — 4-byte magic "usnp" and the little-
// endian CRC32C of the body. Writes go to a .tmp file that is fsynced and
// renamed into place, so a crash mid-snapshot leaves at worst a .tmp that
// open-time cleanup removes; a snapshot that exists under its final name
// is complete or detectably corrupt (trailer CRC), never silently partial.

const snapTrailerMagic = "usnp"

func snapshotPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// listSnapshots returns the dir's snapshots sorted newest first.
func listSnapshots(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		// A data dir that doesn't exist yet holds no snapshots; recovery
		// runs before the WAL open that creates the directory.
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("durable: reading snapshot dir: %w", err)
	}
	var seqs []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		if err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	return seqs, nil
}

// removeTemp deletes leftover in-flight snapshot files.
func removeTemp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}

// crcWriter tees writes into a running CRC32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, castagnoli, p[:n])
	return n, err
}

// WriteSnapshot streams a snapshot covering log records < seq: write is
// handed a writer for the body, then the trailer is appended and the file
// atomically renamed into place. The directory is fsynced so the rename
// itself is durable.
func WriteSnapshot(dir string, seq uint64, write func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: creating snapshot dir: %w", err)
	}
	tmp := filepath.Join(dir, fmt.Sprintf("snap-%016x.tmp", seq))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("durable: creating snapshot: %w", err)
	}
	defer os.Remove(tmp) // no-op after a successful rename
	bw := bufio.NewWriterSize(f, 256<<10)
	cw := &crcWriter{w: bw}
	if err := write(cw); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing snapshot body: %w", err)
	}
	var trailer [8]byte
	copy(trailer[:4], snapTrailerMagic)
	binary.LittleEndian.PutUint32(trailer[4:], cw.crc)
	if _, err := bw.Write(trailer[:]); err != nil {
		f.Close()
		return fmt.Errorf("durable: writing snapshot trailer: %w", err)
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("durable: flushing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: fsyncing snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("durable: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, snapshotPath(dir, seq)); err != nil {
		return fmt.Errorf("durable: publishing snapshot: %w", err)
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: fsyncing dir: %w", err)
	}
	return nil
}

// LoadLatestSnapshot returns the newest snapshot whose trailer CRC
// validates, as (covered seq, body bytes). Corrupt or truncated snapshots
// are skipped — recovery falls back to the next-older one (and, past the
// oldest, to full log replay). found is false when none validate.
func LoadLatestSnapshot(dir string) (seq uint64, body []byte, found bool, err error) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, false, nil
		}
		return 0, nil, false, err
	}
	for _, s := range seqs {
		data, err := os.ReadFile(snapshotPath(dir, s))
		if err != nil {
			continue
		}
		if len(data) < 8 {
			continue
		}
		body, trailer := data[:len(data)-8], data[len(data)-8:]
		if string(trailer[:4]) != snapTrailerMagic {
			continue
		}
		if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(trailer[4:]) {
			continue
		}
		return s, body, true, nil
	}
	return 0, nil, false, nil
}

// LatestSnapshotRaw returns the newest valid snapshot as its raw file
// bytes (trailer included), for shipping to a bootstrapping follower. The
// trailer CRC is verified before the bytes are handed out; corrupt files
// fall back to the next-older snapshot, exactly as LoadLatestSnapshot does.
func LatestSnapshotRaw(dir string) (seq uint64, raw []byte, found bool, err error) {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return 0, nil, false, err
	}
	for _, s := range seqs {
		data, err := os.ReadFile(snapshotPath(dir, s))
		if err != nil {
			continue
		}
		if !snapshotValid(data) {
			continue
		}
		return s, data, true, nil
	}
	return 0, nil, false, nil
}

// snapshotValid reports whether raw snapshot file bytes end in a correct
// trailer (magic + CRC32C of the body).
func snapshotValid(data []byte) bool {
	if len(data) < 8 {
		return false
	}
	body, trailer := data[:len(data)-8], data[len(data)-8:]
	if string(trailer[:4]) != snapTrailerMagic {
		return false
	}
	return crc32.Checksum(body, castagnoli) == binary.LittleEndian.Uint32(trailer[4:])
}

// InstallSnapshot validates raw (a snapshot file as shipped, trailer
// included) and atomically installs it in dir under the canonical name for
// the sequence it covers. A follower bootstrapping from a leader snapshot
// installs it, then opens its store normally — recovery loads it exactly
// as if this node had written it.
func InstallSnapshot(dir string, seq uint64, raw []byte) error {
	if !snapshotValid(raw) {
		return fmt.Errorf("durable: installing snapshot at seq %d: trailer CRC invalid (%d bytes)", seq, len(raw))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: creating snapshot dir: %w", err)
	}
	tmp := filepath.Join(dir, fmt.Sprintf("snap-%016x.tmp", seq))
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("durable: writing shipped snapshot: %w", err)
	}
	if err := os.Rename(tmp, snapshotPath(dir, seq)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: publishing shipped snapshot: %w", err)
	}
	return syncDir(dir)
}

// compactSnapshots removes snapshots older than the newest one at or
// below seq, keeping that one (and anything newer, which cannot exist in
// normal operation).
func compactSnapshots(dir string, seq uint64) error {
	seqs, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	kept := false
	for _, s := range seqs { // newest first
		if s > seq {
			continue
		}
		if !kept {
			kept = true
			continue
		}
		if err := os.Remove(snapshotPath(dir, s)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("durable: removing old snapshot: %w", err)
		}
	}
	return nil
}
