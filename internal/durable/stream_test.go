package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"
)

// TestReadFramesRoundTrip ships the whole log in bounded chunks and
// checks the receiver sees exactly the appended records, byte-identically.
func TestReadFramesRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 256}) // force rotation
	if err != nil {
		t.Fatal(err)
	}
	const n = 30
	var wantRaw []byte
	for i := 0; i < n; i++ {
		mustAppend(t, w, rec(i))
		wantRaw = appendFrame(wantRaw, rec(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var gotRaw []byte
	var got []Record
	from := uint64(0)
	for {
		fr, err := ReadFrames(dir, from, 300)
		if err != nil {
			t.Fatalf("ReadFrames(%d): %v", from, err)
		}
		if fr.Count == 0 {
			break
		}
		if fr.From != from {
			t.Fatalf("chunk starts at %d, want %d", fr.From, from)
		}
		gotRaw = append(gotRaw, fr.Raw...)
		frames, consumed, err := IterFrames(fr.Raw, func(r Record) error {
			got = append(got, Record{Type: r.Type, BatchID: r.BatchID, Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil || frames != fr.Count || consumed != int64(len(fr.Raw)) {
			t.Fatalf("IterFrames: frames=%d consumed=%d err=%v (want %d, %d)", frames, consumed, err, fr.Count, len(fr.Raw))
		}
		from = fr.Next
	}
	if from != n || len(got) != n {
		t.Fatalf("shipped %d frames to seq %d, want %d", len(got), from, n)
	}
	if !bytes.Equal(gotRaw, wantRaw) {
		t.Fatal("shipped frames are not byte-identical to the appended frames")
	}
	for i, r := range got {
		want := rec(i)
		if r.Type != want.Type || r.BatchID != want.BatchID || !bytes.Equal(r.Payload, want.Payload) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	// Reading past the end is an empty result, not an error.
	fr, err := ReadFrames(dir, n, 1<<20)
	if err != nil || fr.Count != 0 || fr.Next != n {
		t.Fatalf("read past end: %+v err=%v", fr, err)
	}
}

// TestReadFramesMidStream starts shipping from an interior sequence that
// sits inside a later segment.
func TestReadFramesMidStream(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	for i := 0; i < n; i++ {
		mustAppend(t, w, rec(i))
	}
	w.Close()
	fr, err := ReadFrames(dir, 17, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if fr.From != 17 || fr.Count != n-17 || fr.Next != n {
		t.Fatalf("mid-stream read: %+v", fr)
	}
	var ids []string
	IterFrames(fr.Raw, func(r Record) error { ids = append(ids, r.BatchID); return nil })
	if ids[0] != rec(17).BatchID || ids[len(ids)-1] != rec(n-1).BatchID {
		t.Fatalf("mid-stream records %v", ids)
	}
}

// TestReadFramesCompacted: a request below the oldest surviving segment
// reports ErrCompacted so the follower knows to bootstrap from a snapshot.
func TestReadFramesCompacted(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, w, rec(i))
	}
	snapSeq := w.Seq()
	writeSnap(t, dir, snapSeq, "covers everything")
	if err := w.Compact(snapSeq); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) == 0 || segs[0].firstSeq == 0 {
		t.Fatalf("compaction left segments %v", segs)
	}
	_, err = ReadFrames(dir, 0, 1<<20)
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("read below horizon returned %v, want ErrCompacted", err)
	}
	fr, err := ReadFrames(dir, segs[0].firstSeq, 1<<20)
	if err != nil || fr.OldestAvailable != segs[0].firstSeq {
		t.Fatalf("read at horizon: %+v err=%v", fr, err)
	}
	w.Close()
}

// TestReadFramesIgnoresUnfinishedTail: a torn final frame (a crash or an
// append in progress) is simply not shipped.
func TestReadFramesIgnoresUnfinishedTail(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		mustAppend(t, w, rec(i))
	}
	w.Close()
	path := segmentPath(dir, 0)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	fr, err := ReadFrames(dir, 0, 1<<20)
	if err != nil || fr.Count != 3 || fr.Next != 3 {
		t.Fatalf("torn tail shipped: %+v err=%v", fr, err)
	}
}

// TestCorruptErrorNamesLocation pins the operator-facing content of
// ErrCorrupt messages: segment filename, frame index, and byte offset.
func TestCorruptErrorNamesLocation(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, Options{SegmentBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		mustAppend(t, w, rec(i))
	}
	w.Close()
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want rotation (err=%v)", err)
	}
	// Flip a byte in the second frame of the first (interior) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	bounds := FrameBoundaries(data)
	if len(bounds) < 2 {
		t.Fatalf("first segment holds %d frames", len(bounds))
	}
	data[bounds[0]+frameHdrSize+2] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, probe := range []func() error{
		func() error { _, err := Replay(dir, 0, func(uint64, Record) error { return nil }); return err },
		func() error { _, err := ReadFrames(dir, 0, 1<<20); return err },
	} {
		err := probe()
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
		msg := err.Error()
		for _, want := range []string{
			"wal-0000000000000000.log",          // segment filename
			"frame 1",                           // frame index within the segment
			fmt.Sprintf("offset %d", bounds[0]), // byte offset of the damaged frame
		} {
			if !strings.Contains(msg, want) {
				t.Fatalf("corruption error %q does not mention %q", msg, want)
			}
		}
	}
}

// TestHasStateAndInstallSnapshot covers the follower-bootstrap helpers.
func TestHasStateAndInstallSnapshot(t *testing.T) {
	dir := t.TempDir()
	if ok, err := HasState(dir); err != nil || ok {
		t.Fatalf("empty dir: ok=%v err=%v", ok, err)
	}
	src := t.TempDir()
	writeSnap(t, src, 42, "leader state")
	seq, raw, found, err := LatestSnapshotRaw(src)
	if err != nil || !found || seq != 42 {
		t.Fatalf("LatestSnapshotRaw: seq=%d found=%v err=%v", seq, found, err)
	}
	if err := InstallSnapshot(dir, seq, raw); err != nil {
		t.Fatal(err)
	}
	if ok, err := HasState(dir); err != nil || !ok {
		t.Fatalf("after install: ok=%v err=%v", ok, err)
	}
	gotSeq, body, found, err := LoadLatestSnapshot(dir)
	if err != nil || !found || gotSeq != 42 || string(body) != "leader state" {
		t.Fatalf("installed snapshot loads as seq=%d body=%q found=%v err=%v", gotSeq, body, found, err)
	}
	// A mangled ship is rejected before touching the canonical name.
	raw[3] ^= 0x10
	if err := InstallSnapshot(t.TempDir(), seq, raw); err == nil {
		t.Fatal("corrupt shipped snapshot installed")
	}
}
