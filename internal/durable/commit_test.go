package durable

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

// walBytes concatenates every segment in order — the byte-identity oracle.
func walBytes(t *testing.T, dir string) []byte {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(data)
	}
	return buf.Bytes()
}

func groupOpts(extra func(*Options)) Options {
	o := Options{Fsync: FsyncPerBatch, GroupCommit: true}
	if extra != nil {
		extra(&o)
	}
	return o
}

// TestGroupCommitBytesIdenticalToSerial pipelines appends through the
// scheduler (AppendAsync, waiting only at the end) and requires the log
// bytes to equal a serial fsync-per-batch log of the same records. Group
// commit may only change the fsync schedule, never the bytes — PR-5 crash
// recovery and PR-7 replication both hang off that invariant.
func TestGroupCommitBytesIdenticalToSerial(t *testing.T) {
	const n = 200
	serialDir := t.TempDir()
	sw, err := OpenWAL(serialDir, 0, Options{Fsync: FsyncPerBatch, SegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		mustAppend(t, sw, rec(i))
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}

	groupDir := t.TempDir()
	gw, err := OpenWAL(groupDir, 0, groupOpts(func(o *Options) { o.SegmentBytes = 4096 }))
	if err != nil {
		t.Fatal(err)
	}
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		seq, tk, err := gw.AppendAsync(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
		tickets = append(tickets, tk)
	}
	for i, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(walBytes(t, serialDir), walBytes(t, groupDir)) {
		t.Fatal("group-commit log bytes differ from serial appends")
	}
	got, info := collect(t, groupDir, 0)
	if len(got) != n || info.Torn {
		t.Fatalf("replayed %d torn=%v", len(got), info.Torn)
	}
}

// TestGroupCommitConcurrentAppends hammers AppendAsync from many goroutines
// (run under -race in CI): every ticket must resolve nil, every record must
// replay exactly once, and the scheduler must actually have amortized —
// fewer fsync groups than batches.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(func(o *Options) { o.SegmentBytes = 8192 }))
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perW)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r := Record{Type: 1, BatchID: fmt.Sprintf("w%02d-%04d", g, i), Payload: bytes.Repeat([]byte{byte(g)}, 64)}
				_, tk, err := w.AppendAsync(r)
				if err != nil {
					errs <- err
					return
				}
				if err := tk.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m, ok := w.CommitMetrics()
	if !ok {
		t.Fatal("CommitMetrics not available with scheduler attached")
	}
	if m.Batches != workers*perW {
		t.Fatalf("metrics counted %d batches, want %d", m.Batches, workers*perW)
	}
	if m.Groups == 0 || m.Groups > m.Batches {
		t.Fatalf("groups=%d batches=%d", m.Groups, m.Batches)
	}
	var histTotal uint64
	for _, c := range m.GroupSizeHist {
		histTotal += c
	}
	if histTotal != m.Groups {
		t.Fatalf("histogram sums to %d, want %d groups", histTotal, m.Groups)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info := collect(t, dir, 0)
	if len(got) != workers*perW || info.Torn {
		t.Fatalf("replayed %d torn=%v", len(got), info.Torn)
	}
	seen := make(map[string]bool, len(got))
	for _, r := range got {
		if seen[r.BatchID] {
			t.Fatalf("batch %s replayed twice", r.BatchID)
		}
		seen[r.BatchID] = true
	}
}

// TestGroupCommitLingerForms a real multi-frame group: with a generous
// MaxGroupDelay, appends issued while the scheduler lingers commit as one
// group, and the max-bytes threshold seals a group early.
func TestGroupCommitLingerFormsGroups(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(func(o *Options) {
		o.MaxGroupDelay = 200 * time.Millisecond
		o.MaxGroupBytes = 1 << 20
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const n = 5
	tickets := make([]*Ticket, 0, n)
	for i := 0; i < n; i++ {
		_, tk, err := w.AppendAsync(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	for _, tk := range tickets {
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	m, _ := w.CommitMetrics()
	if m.Batches != n {
		t.Fatalf("batches=%d want %d", m.Batches, n)
	}
	if m.Groups >= n {
		t.Fatalf("lingering scheduler formed %d groups for %d batches; wanted amortization", m.Groups, n)
	}
	if m.MaxGroup < 2 {
		t.Fatalf("max group %d, want >= 2", m.MaxGroup)
	}
}

// TestGroupCommitMaxBytesSealsEarly: a tiny MaxGroupBytes must seal the
// group as soon as one frame lands, even though MaxGroupDelay is far
// longer than the test is willing to wait.
func TestGroupCommitMaxBytesSealsEarly(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(func(o *Options) {
		o.MaxGroupDelay = time.Hour
		o.MaxGroupBytes = 1 // any frame exceeds this
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	_, tk, err := w.AppendAsync(rec(0))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-tk.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("ticket did not resolve: max-bytes seal did not fire")
	}
	if err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
}

// TestGroupCommitCloseFlushesPending: tickets outstanding at Close must
// resolve (durably) rather than hang or be dropped.
func TestGroupCommitCloseFlushesPending(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(func(o *Options) {
		o.MaxGroupDelay = time.Hour // scheduler would linger ~forever
		o.MaxGroupBytes = 1 << 30
	}))
	if err != nil {
		t.Fatal(err)
	}
	var tickets []*Ticket
	for i := 0; i < 3; i++ {
		_, tk, err := w.AppendAsync(rec(i))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	done := make(chan error, 1)
	go func() { done <- w.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung with pending commit group")
	}
	for i, tk := range tickets {
		if !tk.Resolved() {
			t.Fatalf("ticket %d unresolved after Close", i)
		}
		if err := tk.Wait(); err != nil {
			t.Fatalf("ticket %d: %v", i, err)
		}
	}
	got, _ := collect(t, dir, 0)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
}

// TestGroupCommitRotationUnderLoad drives concurrent appends across many
// segment rotations: retired handles must be released, not closed under a
// scheduler fsync, and every record must survive.
func TestGroupCommitRotationUnderLoad(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(func(o *Options) { o.SegmentBytes = 512 }))
	if err != nil {
		t.Fatal(err)
	}
	const (
		workers = 4
		perW    = 60
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				r := Record{Type: 1, BatchID: fmt.Sprintf("r%02d-%04d", g, i), Payload: bytes.Repeat([]byte{0xAB}, 90)}
				_, tk, err := w.AppendAsync(r)
				if err != nil {
					errs <- err
					return
				}
				if err := tk.Wait(); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("expected multiple segments, got %d", len(segs))
	}
	got, info := collect(t, dir, 0)
	if len(got) != workers*perW || info.Torn {
		t.Fatalf("replayed %d torn=%v", len(got), info.Torn)
	}
}

// TestGroupCommitPoisonedAfterFsyncFailure: a failed group fsync must fail
// every ticket in the group and reject subsequent appends — never
// acknowledge a batch the log cannot promise to persist.
func TestGroupCommitPoisonedAfterFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	// Prime the log so the active segment exists, then sabotage the handle:
	// a pipe accepts writes but fails fsync (EINVAL), so the frame write
	// succeeds and the failure surfaces exactly where group commit must
	// catch it — at the covering fsync.
	if _, err := w.Append(rec(0)); err != nil {
		t.Fatal(err)
	}
	pr, pw, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()
	defer pw.Close()
	w.mu.Lock()
	good := w.f
	w.f = pw
	w.mu.Unlock()

	_, tk, err := w.AppendAsync(rec(1))
	if err != nil {
		t.Fatalf("append to pipe failed at write, not fsync: %v", err)
	}
	if werr := tk.Wait(); werr == nil {
		t.Fatal("ticket resolved nil despite failing fsync")
	}
	// Scheduler is now poisoned; further appends must be rejected.
	if _, _, err := w.AppendAsync(rec(2)); err == nil {
		t.Fatal("append accepted on poisoned group-commit log")
	}
	// Restore the real handle so Close can run cleanly.
	w.mu.Lock()
	w.f = good
	w.mu.Unlock()
}

// TestAppendAsyncResolvedUnderNonBatchPolicies: without the scheduler the
// ticket is pre-resolved, so callers can append-then-Wait unconditionally.
func TestAppendAsyncResolvedUnderNonBatchPolicies(t *testing.T) {
	for _, p := range []FsyncPolicy{FsyncInterval, FsyncOff, FsyncPerBatch} {
		dir := t.TempDir()
		// GroupCommit is requested but must only attach under FsyncPerBatch.
		w, err := OpenWAL(dir, 0, Options{Fsync: p, GroupCommit: p != FsyncPerBatch})
		if err != nil {
			t.Fatal(err)
		}
		_, tk, err := w.AppendAsync(rec(0))
		if err != nil {
			t.Fatal(err)
		}
		if !tk.Resolved() {
			t.Fatalf("policy %v: ticket not pre-resolved without scheduler", p)
		}
		if err := tk.Wait(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGroupCommitReopenAfterClose: a group-commit WAL must recover like any
// other — close, reopen with the scheduler, keep appending.
func TestGroupCommitReopenAfterClose(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, 0, groupOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		mustAppend(t, w, rec(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(dir, 0, groupOpts(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got := w2.Seq(); got != 5 {
		t.Fatalf("reopened seq %d, want 5", got)
	}
	for i := 5; i < 10; i++ {
		mustAppend(t, w2, rec(i))
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dir, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d, want 10", len(got))
	}
}

func TestSizeBucket(t *testing.T) {
	cases := map[int]int{0: 0, 1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 17: 5, 32: 5, 33: 6, 1000: 6}
	for n, want := range cases {
		if got := sizeBucket(n); got != want {
			t.Errorf("sizeBucket(%d) = %d, want %d", n, got, want)
		}
	}
}
