// Package durable is the persistence layer under the USaaS store: a
// segmented, CRC32C-framed append-only write-ahead log plus atomic
// point-in-time snapshots.
//
// The paper's §5 service is a long-running collector — months of implicit
// and explicit signals answer operator queries — so losing the in-memory
// store on restart is losing the product. The durability contract here is
// the standard WAL one:
//
//   - Every accepted ingest batch is appended to the log (and, per the
//     fsync policy, forced to stable storage) before the in-memory state
//     mutates and before the client's acknowledgement is sent.
//   - A snapshot captures the full store state as of a log position (the
//     record sequence number); recovery loads the newest valid snapshot
//     and replays only the log tail past it.
//   - A crash can tear the last frame of the last segment. Replay detects
//     torn or truncated tails by frame CRC and discards them; everything
//     before the tear is intact because frames are appended with a single
//     write and earlier frames were already on disk.
//
// The package is deliberately schema-free: a Record is a type byte, a
// batch ID, and an opaque payload. The USaaS layer encodes ingest batches
// as NDJSON (the same wire format the HTTP API speaks), which keeps the
// log human-inspectable and lets recovery replay batches through the
// exact code path live ingest uses.
//
// # On-disk layout
//
//	dir/
//	  wal-<firstSeq>.log   log segments, hex-named by first record seq
//	  snap-<seq>.snap      snapshots, hex-named by the seq they cover
//	  snap-<seq>.tmp       in-flight snapshot (ignored; removed on open)
//
// # Frame layout
//
// Each log record is one frame:
//
//	offset  size  field
//	0       4     magic "uswl"
//	4       4     payload length N (little-endian uint32)
//	8       4     CRC32C over bytes 0..8 and the payload (little-endian)
//	12      N     payload: type(1) | batchID len uvarint | batchID | body
//
// The CRC covers the header as well as the payload, so a torn length or a
// bit flip anywhere in the frame is detected, not just payload damage.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"time"
)

// FsyncPolicy says when appended frames are forced to stable storage.
type FsyncPolicy int

const (
	// FsyncPerBatch fsyncs after every append, before the append returns:
	// an acknowledged batch survives power loss. The slowest, safest mode.
	FsyncPerBatch FsyncPolicy = iota
	// FsyncInterval leaves syncing to a periodic background Sync (the
	// caller drives the ticker); a crash loses at most one interval of
	// acknowledged batches. Frames are still written (not buffered in user
	// space), so a process crash alone loses nothing.
	FsyncInterval
	// FsyncOff never fsyncs explicitly; the OS writes back on its own
	// schedule. Same process-crash guarantee as FsyncInterval.
	FsyncOff
)

// String names the policy as the -fsync flag spells it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncPerBatch:
		return "batch"
	case FsyncInterval:
		return "interval"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("FsyncPolicy(%d)", int(p))
	}
}

// ParseFsyncPolicy parses the -fsync flag values "batch", "interval", "off".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "batch", "":
		return FsyncPerBatch, nil
	case "interval":
		return FsyncInterval, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("durable: unknown fsync policy %q (want batch, interval, or off)", s)
	}
}

// Options configures a WAL.
type Options struct {
	// Fsync is the stable-storage policy (default FsyncPerBatch).
	Fsync FsyncPolicy
	// SegmentBytes rolls to a new segment once the current one reaches
	// this size (default 8 MiB). Smaller segments make compaction finer-
	// grained; each segment costs one open file during replay only.
	SegmentBytes int64
	// FsyncInterval is advisory metadata for FsyncInterval mode; the WAL
	// itself does not run a ticker (the owner does, calling Sync), but the
	// value is carried here so one options struct configures the stack.
	FsyncInterval time.Duration
	// GroupCommit attaches the group-commit scheduler (commit.go) under
	// FsyncPerBatch: concurrently arriving appends coalesce into one fsync
	// per group, resolving their tickets together. Log bytes are identical
	// to serial appends; only the fsync schedule changes. Ignored under the
	// interval/off policies, which never wait on a sync.
	GroupCommit bool
	// MaxGroupBytes seals a lingering commit group early once its frames
	// reach this many bytes (default 4 MiB). Only meaningful with
	// MaxGroupDelay > 0; without a delay, groups are whatever accumulated
	// while the previous fsync was in flight.
	MaxGroupBytes int64
	// MaxGroupDelay, when positive, holds each group open that long after
	// its first frame so more appends can join, trading single-append
	// latency for larger groups. The default 0 syncs as soon as the
	// scheduler is free — under concurrency, grouping then emerges from
	// fsync latency alone, with no added latency for a lone appender.
	MaxGroupDelay time.Duration
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 8 << 20
	}
	if o.FsyncInterval <= 0 {
		o.FsyncInterval = time.Second
	}
	if o.MaxGroupBytes <= 0 {
		o.MaxGroupBytes = 4 << 20
	}
	return o
}

// Record is one logged unit: an ingest batch. Type and BatchID are the
// caller's; Payload is opaque bytes (NDJSON in the USaaS layer).
type Record struct {
	Type    byte
	BatchID string
	Payload []byte
}

const (
	frameMagic    = "uswl"
	frameHdrSize  = 12
	maxFrameBytes = 1 << 30 // sanity cap when reading a possibly-garbage length
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports damage before the log tail — a frame that fails its
// CRC in a segment that is not the last, which crash semantics cannot
// produce. Tail damage is not an error; replay just stops there.
var ErrCorrupt = errors.New("durable: log corrupt before tail")

// appendFrame appends the framed record to dst.
func appendFrame(dst []byte, rec Record) []byte {
	start := len(dst)
	dst = append(dst, frameMagic...)
	payloadLen := 1 + uvarintLen(uint64(len(rec.BatchID))) + len(rec.BatchID) + len(rec.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(payloadLen))
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	dst = append(dst, rec.Type)
	dst = binary.AppendUvarint(dst, uint64(len(rec.BatchID)))
	dst = append(dst, rec.BatchID...)
	dst = append(dst, rec.Payload...)
	crc := crc32.Update(0, castagnoli, dst[start:start+8])
	crc = crc32.Update(crc, castagnoli, dst[start+frameHdrSize:])
	binary.LittleEndian.PutUint32(dst[start+8:start+12], crc)
	return dst
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// parseFrame reads one frame from buf. ok=false means buf does not start
// with a complete, CRC-valid frame — at the log tail that is a torn write,
// anywhere else it is corruption. n is the total frame size when ok.
func parseFrame(buf []byte) (rec Record, n int, ok bool) {
	if len(buf) < frameHdrSize {
		return rec, 0, false
	}
	if string(buf[:4]) != frameMagic {
		return rec, 0, false
	}
	payloadLen := int(binary.LittleEndian.Uint32(buf[4:8]))
	if payloadLen < 1 || payloadLen > maxFrameBytes || len(buf) < frameHdrSize+payloadLen {
		return rec, 0, false
	}
	want := binary.LittleEndian.Uint32(buf[8:12])
	crc := crc32.Update(0, castagnoli, buf[:8])
	crc = crc32.Update(crc, castagnoli, buf[frameHdrSize:frameHdrSize+payloadLen])
	if crc != want {
		return rec, 0, false
	}
	payload := buf[frameHdrSize : frameHdrSize+payloadLen]
	rec.Type = payload[0]
	idLen, m := binary.Uvarint(payload[1:])
	if m <= 0 || int(idLen) > len(payload)-1-m {
		return rec, 0, false
	}
	rec.BatchID = string(payload[1+m : 1+m+int(idLen)])
	rec.Payload = payload[1+m+int(idLen):]
	return rec, frameHdrSize + payloadLen, true
}
