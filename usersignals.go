// Package usersignals is the public API of the User Signals as-a-Service
// reproduction of "Don't Forget the User: It's Time to Rethink Network
// Measurements" (HotNets '23).
//
// It curates the stable surface of the internal packages into three groups:
//
//   - Workload generation: synthetic conferencing-call telemetry (the MS
//     Teams stand-in of §3) and a two-year social corpus around a deploying
//     LEO constellation (the r/Starlink stand-in of §4), both fully
//     deterministic under an explicit seed.
//   - Analyses: the paper's studies as functions — engagement dose-response
//     with confounder control, compounding grids, platform stratification,
//     engagement↔MOS correlation, the MOS predictor, sentiment peaks with
//     news annotation, the outage-keyword monitor, monthly OCR speed
//     medians with conditioning analysis, and the early-trend miner.
//   - The USaaS service: an HTTP server and typed client that ingest both
//     signal families and answer operator queries (§5).
//
// See the examples directory for runnable end-to-end walkthroughs and
// cmd/figures for the full figure-by-figure reproduction.
package usersignals

import (
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/durable"
	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/ocr"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

// --- dataset generation -----------------------------------------------

// CallOptions configures conferencing-dataset generation.
type CallOptions = conference.Options

// DefaultCallOptions returns the standard configuration for n calls under
// the given seed.
func DefaultCallOptions(seed uint64, n int) CallOptions {
	return conference.Defaults(seed, n)
}

// SessionRecord is one participant-session of call telemetry (§3.1).
type SessionRecord = telemetry.SessionRecord

// GenerateCalls produces the session records of a simulated call workload.
func GenerateCalls(opts CallOptions) ([]SessionRecord, error) {
	g, err := conference.New(opts)
	if err != nil {
		return nil, err
	}
	return g.GenerateAll()
}

// StreamCalls produces records one at a time through emit (the record is
// reused between calls; copy to retain).
func StreamCalls(opts CallOptions, emit func(*SessionRecord) error) error {
	g, err := conference.New(opts)
	if err != nil {
		return err
	}
	return g.Generate(emit)
}

// SocialConfig configures social-corpus generation.
type SocialConfig = social.Config

// DefaultSocialConfig returns the §4 study configuration.
func DefaultSocialConfig(seed uint64) SocialConfig {
	return social.DefaultConfig(seed)
}

// Corpus is a day-indexed post collection.
type Corpus = social.Corpus

// Post is one forum submission.
type Post = social.Post

// GenerateSocial produces the two-year social corpus.
func GenerateSocial(cfg SocialConfig) (*Corpus, error) {
	return social.Generate(cfg)
}

// ConstellationModel exposes the LEO capacity/subscriber timeline.
type ConstellationModel = leo.Model

// NewConstellationModel returns the historically parameterized model.
func NewConstellationModel() *ConstellationModel { return leo.NewModel() }

// NewsIndex is the dated keyword-searchable news corpus.
type NewsIndex = newswire.Index

// BuildNews generates coverage for a study configuration's timeline.
func BuildNews(cfg SocialConfig) *NewsIndex {
	return newswire.Build(cfg.Model.Launches(), cfg.Outages, cfg.Milestones)
}

// --- NLP and OCR primitives -------------------------------------------

// SentimentAnalyzer scores text into (positive, negative, neutral).
type SentimentAnalyzer = nlp.Analyzer

// NewSentimentAnalyzer returns the default lexicon analyzer.
func NewSentimentAnalyzer() *SentimentAnalyzer { return nlp.NewAnalyzer() }

// OutageDictionary returns the §4.1 outage keyword dictionary.
func OutageDictionary() *nlp.Dictionary { return nlp.OutageDictionary() }

// ExtractScreenshot OCRs a speed-test screenshot into structured fields.
func ExtractScreenshot(s ocr.Screenshot) (ocr.Extraction, error) { return ocr.Extract(s) }

// --- analyses -----------------------------------------------------------

// Metric selects a per-session network aggregate.
type Metric = telemetry.Metric

// Network metrics (means; P95 variants also exist in the internal API).
const (
	LatencyMean   = telemetry.LatencyMean
	LossMean      = telemetry.LossMean
	JitterMean    = telemetry.JitterMean
	BandwidthMean = telemetry.BandwidthMean
)

// Engagement selects a user-engagement metric.
type Engagement = telemetry.Engagement

// Engagement metrics (§3.1).
const (
	Presence = telemetry.Presence
	CamOn    = telemetry.CamOn
	MicOn    = telemetry.MicOn
)

// Binner configures equal-width binning over a metric range.
type Binner = stats.Binner

// NewBinner returns a binner over [lo, hi) with n bins.
func NewBinner(lo, hi float64, n int) Binner { return stats.NewBinner(lo, hi, n) }

// BinnedSeries is a binned dose-response curve.
type BinnedSeries = stats.BinnedSeries

// DoseResponse computes engagement-vs-network curves (Fig. 1).
func DoseResponse(records []SessionRecord, metric Metric, eng Engagement, b Binner) (BinnedSeries, error) {
	return usaas.DoseResponse(records, metric, eng, b, nil)
}

// StudyDoseResponse applies the paper's cohort filter and control bands
// before binning.
func StudyDoseResponse(records []SessionRecord, metric Metric, eng Engagement, b Binner) (BinnedSeries, error) {
	return usaas.DoseResponse(records, metric, eng, b, usaas.StudyFilter(metric))
}

// MOSReport computes the engagement↔MOS correlations (Fig. 4).
func MOSReport(records []SessionRecord) ([]usaas.EngagementMOS, error) {
	return usaas.MOSReport(records, 10, nil)
}

// TrainMOSPredictor fits the §5 engagement-based MOS predictor.
func TrainMOSPredictor(records []SessionRecord) (*usaas.MOSPredictor, error) {
	return usaas.TrainMOSPredictor(records, 1.0)
}

// DailySentiment computes the Fig. 5a daily series.
func DailySentiment(c *Corpus, an *SentimentAnalyzer) []usaas.DaySentiment {
	return usaas.DailySentiment(c, an)
}

// AnnotatePeaks detects and news-annotates the top-k sentiment peaks.
func AnnotatePeaks(c *Corpus, an *SentimentAnalyzer, news *NewsIndex, k int) []usaas.AnnotatedPeak {
	return usaas.AnnotatePeaks(c, an, news, k)
}

// OutageKeywordSeries computes the Fig. 6 daily keyword series with the
// negative-sentiment gate applied.
func OutageKeywordSeries(c *Corpus, an *SentimentAnalyzer) []usaas.DayKeywords {
	return usaas.OutageKeywordSeries(c, an, nlp.OutageDictionary(), true)
}

// MonthlySpeeds runs the Fig. 7 OCR pipeline over a corpus.
func MonthlySpeeds(c *Corpus, an *SentimentAnalyzer, model *ConstellationModel) []usaas.MonthSpeed {
	return usaas.MonthlySpeeds(c, an, model, 1)
}

// MineTrends surfaces emerging, popularity-weighted discussion topics.
func MineTrends(c *Corpus, an *SentimentAnalyzer) []usaas.Trend {
	return usaas.MineTrends(c, an, usaas.TrendOptions{})
}

// DailyEngagement aggregates sessions into a per-day engagement series.
func DailyEngagement(records []SessionRecord) []usaas.DayEngagement {
	return usaas.DailyEngagement(records, nil)
}

// EngagementIncidents detects degraded-experience spans in a daily series:
// §3.3's "early indication of call quality" as a monitor.
func EngagementIncidents(days []usaas.DayEngagement, eng Engagement) []usaas.Incident {
	return usaas.EngagementIncidents(days, eng, usaas.IncidentOptions{})
}

// ConfounderReport quantifies the §6 confounders (platform, meeting size)
// on one engagement metric with network conditions controlled.
func ConfounderReport(records []SessionRecord, eng Engagement) ([]usaas.ConfounderEffect, error) {
	return usaas.ConfounderReport(records, eng)
}

// AdviseTrafficEngineering ranks network improvements by predicted MOS
// payoff (§6).
func AdviseTrafficEngineering(records []SessionRecord) ([]usaas.TERecommendation, error) {
	return usaas.AdviseTrafficEngineering(records)
}

// AdviseDeployment evaluates constellation launch plans against a
// sentiment target (§6).
func AdviseDeployment(model *ConstellationModel, from, horizon Day, maxExtra, satsPerLaunch int, posTarget float64) (usaas.DeploymentAdvice, error) {
	return usaas.AdviseDeployment(model, from, horizon, maxExtra, satsPerLaunch, posTarget)
}

// --- the USaaS service ---------------------------------------------------

// Service is the USaaS HTTP server.
type Service = usaas.Server

// ServiceOptions configures the service.
type ServiceOptions = usaas.ServerOptions

// NewService builds a USaaS service (pass nil for a fresh store).
func NewService(opts ServiceOptions) *Service {
	return usaas.NewServer(nil, opts)
}

// ServiceStore is the service's signal repository.
type ServiceStore = usaas.Store

// NewServiceWithStore builds a USaaS service over an existing store —
// for example a recovered DurableStore's.
func NewServiceWithStore(store *ServiceStore, opts ServiceOptions) *Service {
	return usaas.NewServer(store, opts)
}

// --- durability ----------------------------------------------------------

// DurableStore is a ServiceStore whose accepted ingest batches are
// persisted to a write-ahead log with periodic snapshots; opening one
// recovers the previous state byte-identically (same reports, same
// idempotency table) before any new ingest is accepted.
type DurableStore = usaas.DurableStore

// DurabilityOptions configures the log directory, fsync policy, and
// snapshot cadence.
type DurabilityOptions = usaas.DurabilityOptions

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy = durable.FsyncPolicy

// Fsync policies: per-batch (safest), background interval, or left to
// the OS entirely.
const (
	FsyncPerBatch = durable.FsyncPerBatch
	FsyncInterval = durable.FsyncInterval
	FsyncOff      = durable.FsyncOff
)

// OpenDurableStore opens (and on restart, recovers) a durable store.
func OpenDurableStore(opts DurabilityOptions) (*DurableStore, error) {
	return usaas.OpenDurableStore(opts)
}

// ServiceClient is the typed HTTP client.
type ServiceClient = usaas.Client

// EngagementQuery parameterizes ServiceClient.Engagement.
type EngagementQuery = usaas.EngagementQuery

// NewServiceClient returns a client for a running service.
func NewServiceClient(baseURL string) *ServiceClient {
	return usaas.NewClient(baseURL, nil)
}

// --- calendar -------------------------------------------------------------

// Day is a calendar day (days since 2021-01-01 UTC).
type Day = timeline.Day

// Date builds a Day from a calendar date.
func Date(year int, month time.Month, day int) Day {
	return timeline.Date(year, month, day)
}

// Study windows from the paper.
var (
	// TeamsWindow is the implicit-signals window (Jan–Apr 2022).
	TeamsWindow = timeline.TeamsWindow
	// StarlinkWindow is the explicit-signals window (Jan '21 – Dec '22).
	StarlinkWindow = timeline.StarlinkWindow
)
