// usaas-service demonstrates Fig. 8 with durability: it starts the USaaS
// HTTP service over a write-ahead-logged store, streams both signal
// families through the API in batches, kills the server mid-stream, and
// restarts it — recovery rebuilds the store from the log, the client's
// retried batches deduplicate, and the paper's §5 example query — "how do
// users on the satellite network perceive the conferencing experience?" —
// answers byte-identically to an uninterrupted run.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"usersignals"
)

// batch is one unit of the client's ingest stream: either sessions or
// posts, under a stable ID so a retry after the crash deduplicates.
type batch struct {
	id       string
	sessions []usersignals.SessionRecord
	posts    []usersignals.Post
}

// liveService is one incarnation of the USaaS server process.
type liveService struct {
	store  *usersignals.DurableStore // nil for the in-memory reference
	server *http.Server
	client *usersignals.ServiceClient
}

func (s *liveService) sendAll(ctx context.Context, batches []batch) (applied, skipped int, err error) {
	for _, b := range batches {
		var dup bool
		if b.sessions != nil {
			r, err := s.client.IngestSessionsBatch(ctx, b.id, b.sessions)
			if err != nil {
				return applied, skipped, err
			}
			dup = r.Duplicate
		} else {
			r, err := s.client.IngestPostsBatch(ctx, b.id, b.posts)
			if err != nil {
				return applied, skipped, err
			}
			dup = r.Duplicate
		}
		if dup {
			skipped++
		} else {
			applied++
		}
	}
	return applied, skipped, nil
}

// crash aborts the HTTP server and abandons the durable store without
// flushing or closing it — the in-process stand-in for kill -9. Every
// acknowledged batch is already on disk (fsync per batch), so nothing
// acknowledged can be lost.
func (s *liveService) crash() {
	s.server.Close()
}

func (s *liveService) shutdown() {
	s.server.Close()
	if s.store != nil {
		s.store.Close()
	}
}

// start brings up a service incarnation on an ephemeral port. With dir
// non-empty the store is durable: opening it recovers whatever the
// previous incarnation logged.
func start(dir string, socialCfg usersignals.SocialConfig) (*liveService, error) {
	opts := usersignals.ServiceOptions{
		News:  usersignals.BuildNews(socialCfg),
		Model: socialCfg.Model,
	}
	var (
		svc    *usersignals.Service
		dstore *usersignals.DurableStore
	)
	if dir != "" {
		var err error
		dstore, err = usersignals.OpenDurableStore(usersignals.DurabilityOptions{
			Dir:   dir,
			Fsync: usersignals.FsyncPerBatch,
		})
		if err != nil {
			return nil, err
		}
		rs := dstore.Recovery
		fmt.Printf("  opened %s: %d batches replayed in %v\n",
			dir, rs.ReplayedBatches, rs.Elapsed.Round(time.Millisecond))
		svc = usersignals.NewServiceWithStore(dstore.Store, opts)
	} else {
		svc = usersignals.NewService(opts)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	server := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := server.Serve(ln); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	return &liveService{
		store:  dstore,
		server: server,
		client: usersignals.NewServiceClient("http://" + ln.Addr().String()),
	}, nil
}

func main() {
	// --- generate both signal families ---
	callOpts := usersignals.DefaultCallOptions(31, 600)
	callOpts.SurveyRate = 0.05
	sessions, err := usersignals.GenerateCalls(callOpts)
	if err != nil {
		log.Fatal(err)
	}
	socialCfg := usersignals.DefaultSocialConfig(31)
	corpus, err := usersignals.GenerateSocial(socialCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Cut the workload into the batch stream an operator's exporter would
	// send: session batches then post batches, each under a stable ID.
	var batches []batch
	for i := 0; i*100 < len(sessions); i++ {
		hi := min((i+1)*100, len(sessions))
		batches = append(batches, batch{
			id:       fmt.Sprintf("calls-%03d", i),
			sessions: sessions[i*100 : hi],
		})
	}
	for i := 0; i*500 < len(corpus.Posts); i++ {
		hi := min((i+1)*500, len(corpus.Posts))
		batches = append(batches, batch{
			id:    fmt.Sprintf("posts-%03d", i),
			posts: corpus.Posts[i*500 : hi],
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// --- reference: the same stream into an in-memory service, no crash ---
	ref, err := start("", socialCfg)
	if err != nil {
		log.Fatal(err)
	}
	if _, _, err := ref.sendAll(ctx, batches); err != nil {
		log.Fatal(err)
	}
	refExp, err := ref.client.Experience(ctx, "starlink")
	if err != nil {
		log.Fatal(err)
	}
	ref.shutdown()
	refJSON, err := json.Marshal(refExp)
	if err != nil {
		log.Fatal(err)
	}

	// --- durable run: kill the server halfway through the stream ---
	dir, err := os.MkdirTemp("", "usaas-durable-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("first incarnation:")
	first, err := start(dir, socialCfg)
	if err != nil {
		log.Fatal(err)
	}
	half := batches[:len(batches)/2]
	if _, _, err := first.sendAll(ctx, half); err != nil {
		log.Fatal(err)
	}
	first.crash()
	fmt.Printf("  killed mid-stream after %d of %d batches\n\n", len(half), len(batches))

	fmt.Println("second incarnation (recovery):")
	second, err := start(dir, socialCfg)
	if err != nil {
		log.Fatal(err)
	}
	defer second.shutdown()
	// The exporter retries its whole stream; the write-ahead log's
	// idempotency table absorbs everything already acknowledged.
	applied, skipped, err := second.sendAll(ctx, batches)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  stream retried: %d batches deduplicated, %d newly applied\n", skipped, applied)

	st, err := second.client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  store holds %d sessions and %d posts\n\n", st.Sessions, st.Posts)

	// --- the §5 cross-source query, identical across the crash ---
	client := second.client
	exp, err := client.Experience(ctx, "starlink")
	if err != nil {
		log.Fatal(err)
	}
	gotJSON, err := json.Marshal(exp)
	if err != nil {
		log.Fatal(err)
	}
	if string(gotJSON) == string(refJSON) {
		fmt.Println("§5 Starlink query is byte-identical to the uninterrupted run ✓")
	} else {
		log.Fatalf("recovered answer diverged:\n  want %s\n  got  %s", refJSON, gotJSON)
	}

	for _, isp := range []string{"starlink", "metrofiber", "cellone"} {
		exp, err := client.Experience(ctx, isp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %4d sessions | presence %5.1f%% cam %5.1f%% mic %5.1f%% | predicted MOS %.2f",
			exp.ISP, exp.Sessions, exp.MeanPresence, exp.MeanCamOn, exp.MeanMicOn, exp.PredictedMOS)
		if exp.SurveyedCount > 0 {
			fmt.Printf(" (surveyed %.2f over %d)", exp.SurveyedMOS, exp.SurveyedCount)
		}
		fmt.Println()
	}

	fmt.Printf("\nsocial side for the satellite ISP: Pos ratio %.2f, %d outage mentions in the corpus\n",
		exp.SocialPosRatio, exp.OutageMentions)

	// --- one insight endpoint for good measure ---
	curve, err := client.Engagement(ctx, usersignals.EngagementQuery{
		Metric:     usersignals.LatencyMean,
		Engagement: usersignals.MicOn,
		Lo:         0, Hi: 300, Bins: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmic-on vs latency over HTTP:")
	for i := range curve.X {
		if curve.Count[i] > 0 {
			fmt.Printf("  %6.0f ms: %5.1f%%\n", curve.X[i], curve.Y[i])
		}
	}

	// --- and the composed operator report ---
	rep, err := client.Report(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
}
