// usaas-service demonstrates Fig. 8: it starts the USaaS HTTP service,
// ingests both signal families through the API, and runs the paper's §5
// example query — "how do users on the satellite network perceive the
// conferencing experience?" — fusing implicit actions, sparse surveys, a
// trained predictor, and social sentiment into one answer.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"usersignals"
)

func main() {
	// --- generate both signal families ---
	callOpts := usersignals.DefaultCallOptions(31, 600)
	callOpts.SurveyRate = 0.05
	sessions, err := usersignals.GenerateCalls(callOpts)
	if err != nil {
		log.Fatal(err)
	}
	socialCfg := usersignals.DefaultSocialConfig(31)
	corpus, err := usersignals.GenerateSocial(socialCfg)
	if err != nil {
		log.Fatal(err)
	}

	// --- start the service on an ephemeral port ---
	svc := usersignals.NewService(usersignals.ServiceOptions{
		News:  usersignals.BuildNews(socialCfg),
		Model: socialCfg.Model,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	server := &http.Server{Handler: svc.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := server.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer server.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("USaaS listening on", base)

	// --- ingest through the public API ---
	client := usersignals.NewServiceClient(base)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if _, err := client.IngestSessions(ctx, sessions); err != nil {
		log.Fatal(err)
	}
	if _, err := client.IngestPosts(ctx, corpus.Posts); err != nil {
		log.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d sessions and %d posts\n\n", st.Sessions, st.Posts)

	// --- the §5 cross-source query ---
	for _, isp := range []string{"starlink", "metrofiber", "cellone"} {
		exp, err := client.Experience(ctx, isp)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s %4d sessions | presence %5.1f%% cam %5.1f%% mic %5.1f%% | predicted MOS %.2f",
			exp.ISP, exp.Sessions, exp.MeanPresence, exp.MeanCamOn, exp.MeanMicOn, exp.PredictedMOS)
		if exp.SurveyedCount > 0 {
			fmt.Printf(" (surveyed %.2f over %d)", exp.SurveyedMOS, exp.SurveyedCount)
		}
		fmt.Println()
	}

	exp, err := client.Experience(ctx, "starlink")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsocial side for the satellite ISP: Pos ratio %.2f, %d outage mentions in the corpus\n",
		exp.SocialPosRatio, exp.OutageMentions)

	// --- one insight endpoint for good measure ---
	curve, err := client.Engagement(ctx, usersignals.EngagementQuery{
		Metric:     usersignals.LatencyMean,
		Engagement: usersignals.MicOn,
		Lo:         0, Hi: 300, Bins: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmic-on vs latency over HTTP:")
	for i := range curve.X {
		if curve.Count[i] > 0 {
			fmt.Printf("  %6.0f ms: %5.1f%%\n", curve.X[i], curve.Y[i])
		}
	}

	// --- and the composed operator report ---
	rep, err := client.Report(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(rep.Render())
}
