// Quickstart: generate a small call workload, recover one Fig. 1 curve,
// and show why engagement can proxy for sparse MOS surveys — in under a
// minute of CPU.
package main

import (
	"fmt"
	"log"

	"usersignals"
)

func main() {
	// 1. Generate a workload: 300 synthetic conferencing calls over the
	// paper's Jan-Apr 2022 study window. Everything is deterministic
	// under the seed.
	opts := usersignals.DefaultCallOptions(7, 300)
	opts.SurveyRate = 0.05 // oversample surveys at this tiny scale
	records, err := usersignals.GenerateCalls(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d participant sessions\n", len(records))

	// 2. Implicit signals: engagement falls as network latency rises.
	curve, err := usersignals.DoseResponse(records,
		usersignals.LatencyMean, usersignals.MicOn,
		usersignals.NewBinner(0, 300, 6))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMic On vs mean session latency:")
	ne := curve.NonEmpty()
	for i := range ne.X {
		fmt.Printf("  %6.0f ms: %5.1f%% mic-on  (%d sessions)\n", ne.X[i], ne.Y[i], ne.Count[i])
	}

	// 3. Explicit signals are sparse; engagement is everywhere. Train the
	// §5 predictor and estimate quality for an unrated session.
	predictor, err := usersignals.TrainMOSPredictor(records)
	if err != nil {
		log.Fatal(err)
	}
	rated := 0
	for i := range records {
		if records[i].Rated {
			rated++
		}
	}
	fmt.Printf("\nonly %d of %d sessions were surveyed (%.1f%%)\n",
		rated, len(records), 100*float64(rated)/float64(len(records)))
	for i := range records {
		if !records[i].Rated {
			fmt.Printf("predicted MOS for an unrated session: %.2f\n",
				predictor.Predict(&records[i]))
			break
		}
	}
}
