// Conferencing walks the §3 study end to end: generate a latency sweep
// with confounders held in the paper's control bands, recover all three
// engagement curves, demonstrate the latency x loss compounding effect,
// the platform stratification, and the engagement↔MOS correlation.
package main

import (
	"fmt"
	"log"

	"usersignals"
	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/usaas"
)

func main() {
	// --- Fig. 1-style sweep: latency varies, everything else controlled.
	sweep := netsim.ControlBands()
	sweep.LatencyMs = [2]float64{0, 300}
	opts := conference.Defaults(11, 800)
	opts.Paths = &sweep
	opts.SurveyRate = 0.05
	gen, err := conference.New(opts)
	if err != nil {
		log.Fatal(err)
	}
	records, err := gen.GenerateAll()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("latency sweep: %d sessions\n\n", len(records))

	binner := stats.NewBinner(0, 300, 6)
	for _, eng := range telemetry.Engagements() {
		curve, err := usaas.DoseResponse(records, telemetry.LatencyMean, eng, binner, telemetry.StudyCohort())
		if err != nil {
			log.Fatal(err)
		}
		drop := usaas.RelativeDrop(curve)
		fmt.Printf("%-9s falls %4.0f%% from 0 to 300 ms latency\n", eng, 100*drop)
	}

	// --- Fig. 2: the compounding effect needs a 2D sweep.
	sweep2 := netsim.ControlBands()
	sweep2.LatencyMs = [2]float64{0, 300}
	sweep2.LossPct = [2]float64{0, 3.5}
	opts2 := conference.Defaults(12, 1200)
	opts2.Paths = &sweep2
	opts2.SurveyRate = 0.05
	gen2, err := conference.New(opts2)
	if err != nil {
		log.Fatal(err)
	}
	records2, err := gen2.GenerateAll()
	if err != nil {
		log.Fatal(err)
	}
	grid, err := usaas.Compounding(records2,
		telemetry.LatencyMean, telemetry.LossMean, telemetry.Presence,
		stats.NewBinner(0, 300, 4), stats.NewBinner(0, 3.5, 4), telemetry.StudyCohort())
	if err != nil {
		log.Fatal(err)
	}
	best, worst, _ := grid.BestWorst()
	fmt.Printf("\ncompounding (Fig 2): presence %0.f%% at best cell, %0.f%% at worst — a %.0f%% dip\n",
		best, worst, 100*(best-worst)/best)

	// --- Fig. 3: platforms respond differently.
	byPlat, err := usaas.ByPlatform(records2, telemetry.LossMean, telemetry.Presence,
		stats.NewBinner(0, 3.5, 4), telemetry.StudyCohort())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npresence at the highest loss bin, per platform (Fig 3):")
	for _, p := range []string{"windows-pc", "mac-pc", "ios-mobile", "android-mobile"} {
		s := byPlat[p].NonEmpty()
		if len(s.Y) > 0 {
			fmt.Printf("  %-15s %.0f%%\n", p, s.Y[len(s.Y)-1])
		}
	}

	// --- Fig. 4: engagement correlates with the sparse explicit ratings.
	// The 2D sweep has the widest quality spread, so use it here.
	report, err := usersignals.MOSReport(records2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nengagement vs MOS on the rated subset (Fig 4):")
	for _, em := range report {
		fmt.Printf("  %-9s Pearson %.2f, Spearman %.2f over %d rated sessions\n",
			em.Engagement, em.Pearson, em.Spearman, em.RatedSessions)
	}
}
