// Planning demonstrates §6's "traffic engineering & network planning
// opportunities": USaaS insights turned into operator decisions. The
// conferencing operator asks which network metric deserves optimization
// budget; the constellation operator asks how many launches keep user
// sentiment above a target.
package main

import (
	"fmt"
	"log"
	"time"

	"usersignals"
)

func main() {
	// --- conferencing side: where should the network budget go? ---
	opts := usersignals.DefaultCallOptions(51, 800)
	opts.SurveyRate = 0.05
	records, err := usersignals.GenerateCalls(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzing %d sessions\n\n", len(records))

	recos, err := usersignals.AdviseTrafficEngineering(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("traffic-engineering advice (ranked by population MOS payoff):")
	for i, r := range recos {
		fmt.Printf("  %d. %-22s affects %4.1f%% of sessions, +%.3f MOS each → total %.4f\n",
			i+1, r.Improvement+" ("+r.Metric.String()+")",
			100*r.AffectedFrac, r.MeanMOSLift, r.TotalLift)
	}

	// --- confounder check before spending that budget (§6: "are networks
	// to blame always?") ---
	effects, err := usersignals.ConfounderReport(records, usersignals.CamOn)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncamera-use confounders at controlled network conditions:")
	for _, e := range effects {
		fmt.Printf("  %-13s moves cam-on by %4.1f%% across levels %v\n",
			e.Confounder, 100*e.Spread, fmtLevels(e.Levels))
	}

	// --- constellation side: launches vs sentiment ---
	model := usersignals.NewConstellationModel()
	from := usersignals.Date(2022, time.June, 1)
	horizon := usersignals.Date(2022, time.December, 1)
	advice, err := usersignals.AdviseDeployment(model, from, horizon, 8, 50, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeployment scenarios for Jun→Dec 2022 (50 sats per extra launch):")
	for _, sc := range advice.Scenarios {
		fmt.Printf("  +%d launches: projected median %.1f Mbps, projected Pos %.2f\n",
			sc.ExtraLaunches, sc.ProjectedSpeed, sc.ProjectedPos)
	}
	target := (advice.Scenarios[0].ProjectedPos + advice.Scenarios[len(advice.Scenarios)-1].ProjectedPos) / 2
	advice2, err := usersignals.AdviseDeployment(model, from, horizon, 8, 50, target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nto keep Pos ≥ %.2f through December, schedule %d extra launches\n",
		target, advice2.LaunchesForTarget)
}

func fmtLevels(levels map[string]float64) string {
	out := "{"
	first := true
	for _, name := range []string{"windows-pc", "mac-pc", "ios-mobile", "android-mobile",
		"small-3-5", "medium-6-10", "large-11+"} {
		if v, ok := levels[name]; ok {
			if !first {
				out += ", "
			}
			out += fmt.Sprintf("%s: %.0f%%", name, v)
			first = false
		}
	}
	return out + "}"
}
