// Starlink walks the §4 study end to end: generate the two-year social
// corpus around the deploying constellation, then recover the paper's
// findings using only what a real analyst would have — post text,
// screenshots, upvotes, and public news — never the generator's ground
// truth.
package main

import (
	"fmt"
	"log"
	"time"

	"usersignals"
	"usersignals/internal/usaas"
)

func main() {
	cfg := usersignals.DefaultSocialConfig(21)
	corpus, err := usersignals.GenerateSocial(cfg)
	if err != nil {
		log.Fatal(err)
	}
	posts, upvotes, comments := corpus.WeeklyAverages()
	fmt.Printf("corpus: %d posts over two years (%.0f/week; %.0f upvotes/wk, %.0f comments/wk)\n\n",
		corpus.Len(), posts, upvotes, comments)

	an := usersignals.NewSentimentAnalyzer()
	news := usersignals.BuildNews(cfg)

	// --- Fig. 5: sentiment peaks, annotated from the news index.
	fmt.Println("top sentiment peaks (Fig 5a):")
	for _, pk := range usersignals.AnnotatePeaks(corpus, an, news, 3) {
		polarity := "negative"
		if pk.Positive {
			polarity = "positive"
		}
		annotation := "no news coverage found"
		if len(pk.News) > 0 {
			annotation = pk.News[0].Headline
		}
		words := make([]string, 0, 3)
		for i, wc := range pk.TopWords {
			if i == 3 {
				break
			}
			words = append(words, wc.Word)
		}
		fmt.Printf("  %s  %-8s %3d strong posts  words=%v\n      → %s\n",
			pk.Day, polarity, pk.Strong, words, annotation)
	}

	// --- Fig. 6: the outage monitor sees transient outages that no
	// large-incident tracker would log.
	series := usersignals.OutageKeywordSeries(corpus, an)
	alerts := usaas.AlertsFromSeries(series, 3)
	big := usaas.AlertsFromSeries(series, 150)
	fmt.Printf("\noutage monitor (Fig 6): %d alert days at the sensitive threshold, %d at a Downdetector-style threshold\n",
		len(alerts), len(big))

	// --- Fig. 7: monthly speed medians from OCR'd screenshots.
	fmt.Println("\nmonthly median downlink from screenshots (Fig 7):")
	months := usersignals.MonthlySpeeds(corpus, an, cfg.Model)
	for _, m := range months {
		if m.Month.Month() != time.March && m.Month.Month() != time.September &&
			m.Month.Month() != time.December {
			continue // print a readable subset
		}
		fmt.Printf("  %s  median %5.1f Mbps  (%3d reports, %d launches, %.0fK users, Pos %.2f)\n",
			m.Month, m.MedianDownMbps, m.Reports, m.Launches, m.Users/1000, m.Pos)
	}
	finding := usaas.AnalyzeConditioning(months)
	fmt.Printf("\nconditioning (the wheel of time): Dec'21-vs-Apr'21 anomaly=%v, late-'22 Pos recovery=%v\n",
		finding.DecemberBelowApril, finding.LateRecovery)

	// --- Roaming: the miner hears about features before the CEO tweets.
	trends := usersignals.MineTrends(corpus, an)
	tweetDay := usersignals.Date(2022, time.March, 3)
	if lead, ok := usaas.LeadTime(trends, "roaming", tweetDay); ok {
		fmt.Printf("\ntrend miner: 'roaming' surfaced %d days before the official announcement\n", lead)
	}
}
