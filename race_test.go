package usersignals

// A short-mode-friendly smoke test for the parallel engine. It is most
// useful under the race detector (`go test -race ./...`, see README
// "Testing"): generation and analysis run concurrently at full worker
// counts, so any unsynchronized access to shared generator or accumulator
// state trips -race even on a single-core machine.

import (
	"runtime"
	"sync"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

func TestParallelEngineRaceSmoke(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4 // force real concurrency even on tiny machines
	}

	var wg sync.WaitGroup
	fail := make(chan error, 3)

	// Sharded conference generation, feeding sharded analysis.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sw := netsim.ControlBands()
		sw.LatencyMs = [2]float64{0, 300}
		opts := conference.Defaults(31337, 80)
		opts.Paths = &sw
		opts.Workers = workers
		g, err := conference.New(opts)
		if err != nil {
			fail <- err
			return
		}
		recs, err := g.GenerateAll()
		if err != nil {
			fail <- err
			return
		}
		b := stats.NewBinner(0, 300, 8)
		if _, err := usaas.DoseResponseN(recs, telemetry.LatencyMean, telemetry.Presence, b, nil, workers); err != nil {
			fail <- err
		}
	}()

	// Day-sharded social generation on a trimmed window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		cfg := social.DefaultConfig(31338)
		cfg.Window = timeline.Range{
			From: cfg.Window.From,
			To:   cfg.Window.From + 45,
		}
		cfg.Workers = workers
		if _, err := social.Generate(cfg); err != nil {
			fail <- err
		}
	}()

	// A second independent conference generation sharing nothing with the
	// first except package-level state — which must therefore be read-only.
	wg.Add(1)
	go func() {
		defer wg.Done()
		opts := conference.Defaults(31339, 80)
		opts.Workers = workers
		g, err := conference.New(opts)
		if err != nil {
			fail <- err
			return
		}
		if _, err := g.GenerateAll(); err != nil {
			fail <- err
		}
	}()

	wg.Wait()
	close(fail)
	for err := range fail {
		t.Fatal(err)
	}
}
