package usersignals

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd walks the facade the way the README quickstart
// does: generate both workloads, run one analysis from each study, and run
// the service round trip.
func TestPublicAPIEndToEnd(t *testing.T) {
	// Implicit-signals side.
	opts := DefaultCallOptions(1, 120)
	opts.SurveyRate = 0.05
	recs, err := GenerateCalls(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 240 {
		t.Fatalf("records = %d", len(recs))
	}
	curve, err := DoseResponse(recs, LatencyMean, MicOn, NewBinner(0, 300, 6))
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.X) != 6 {
		t.Fatalf("curve bins = %d", len(curve.X))
	}
	if _, err := StudyDoseResponse(recs, LatencyMean, MicOn, NewBinner(0, 300, 6)); err != nil {
		t.Fatal(err)
	}
	report, err := MOSReport(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(report) != 3 {
		t.Fatalf("MOS report entries = %d", len(report))
	}
	if _, err := TrainMOSPredictor(recs); err != nil {
		t.Fatal(err)
	}

	// Explicit-signals side (smaller window for test speed).
	cfg := DefaultSocialConfig(2)
	cfg.Window = StarlinkWindow
	corpus, err := GenerateSocial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	an := NewSentimentAnalyzer()
	daily := DailySentiment(corpus, an)
	if len(daily) != StarlinkWindow.Len() {
		t.Fatalf("daily length = %d", len(daily))
	}
	news := BuildNews(cfg)
	peaks := AnnotatePeaks(corpus, an, news, 3)
	if len(peaks) != 3 {
		t.Fatalf("peaks = %d", len(peaks))
	}
	series := OutageKeywordSeries(corpus, an)
	if len(series) == 0 {
		t.Fatal("empty outage series")
	}
	months := MonthlySpeeds(corpus, an, cfg.Model)
	if len(months) != 24 {
		t.Fatalf("months = %d", len(months))
	}
	if trends := MineTrends(corpus, an); len(trends) == 0 {
		t.Fatal("no trends")
	}

	// The service round trip.
	svc := NewService(ServiceOptions{News: news, Model: cfg.Model})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := NewServiceClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := client.IngestSessions(ctx, recs); err != nil {
		t.Fatal(err)
	}
	if _, err := client.IngestPosts(ctx, corpus.Posts[:2000]); err != nil {
		t.Fatal(err)
	}
	st, err := client.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Sessions != len(recs) || st.Posts != 2000 {
		t.Fatalf("stats = %+v", st)
	}
	exp, err := client.Experience(ctx, "cablecorp")
	if err != nil {
		t.Fatal(err)
	}
	if exp.Sessions == 0 || exp.PredictedMOS < 1 {
		t.Fatalf("experience = %+v", exp)
	}
}

func TestFacadeExtensions(t *testing.T) {
	opts := DefaultCallOptions(9, 250)
	opts.SurveyRate = 0.05
	recs, err := GenerateCalls(opts)
	if err != nil {
		t.Fatal(err)
	}

	effects, err := ConfounderReport(recs, CamOn)
	if err != nil {
		t.Fatal(err)
	}
	if len(effects) != 2 {
		t.Fatalf("confounders = %d", len(effects))
	}

	recos, err := AdviseTrafficEngineering(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(recos) != 4 {
		t.Fatalf("TE advice = %d", len(recos))
	}

	days := DailyEngagement(recs)
	if len(days) == 0 {
		t.Fatal("no daily engagement")
	}
	_ = EngagementIncidents(days, Presence) // quiet dataset: may be empty

	model := NewConstellationModel()
	advice, err := AdviseDeployment(model,
		Date(2022, time.June, 1), Date(2022, time.December, 1), 3, 50, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(advice.Scenarios) != 4 {
		t.Fatalf("deployment scenarios = %d", len(advice.Scenarios))
	}
}

func TestDateAndWindows(t *testing.T) {
	d := Date(2022, time.April, 22)
	if d.String() != "2022-04-22" {
		t.Fatalf("Date = %v", d)
	}
	if TeamsWindow.Len() != 120 || StarlinkWindow.Len() != 730 {
		t.Fatal("study windows wrong")
	}
}

func TestOCRFacade(t *testing.T) {
	cfg := DefaultSocialConfig(3)
	cfg.Window = StarlinkWindow
	corpus, err := GenerateSocial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range corpus.Posts {
		p := &corpus.Posts[i]
		if p.Screenshot == nil {
			continue
		}
		if _, err := ExtractScreenshot(*p.Screenshot); err == nil {
			return // one successful extraction is all this facade test needs
		}
	}
	t.Fatal("no screenshot extracted")
}

func TestOutageDictionaryFacade(t *testing.T) {
	if !OutageDictionary().Matches("total outage in Ohio") {
		t.Fatal("dictionary facade broken")
	}
}
