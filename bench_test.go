package usersignals

// One benchmark per paper table/figure (see DESIGN.md §4), plus the
// ablations DESIGN.md §5 calls out and micro-benchmarks of the hot
// substrate paths. Each figure benchmark measures its analysis pipeline
// over a cached dataset and reports the figure's headline quantity via
// b.ReportMetric, so `go test -bench=.` doubles as a compact reproduction
// report.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/leo"
	"usersignals/internal/media"
	"usersignals/internal/netsim"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/ocr"
	"usersignals/internal/simrand"
	"usersignals/internal/social"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

// --- cached datasets -----------------------------------------------------

// benchEntry guards one cached dataset with its own sync.Once, so two
// benchmarks racing on the same key (possible under -bench with parallel
// subtests, and flagged by the race detector) generate it exactly once.
type benchEntry struct {
	once sync.Once
	recs []telemetry.SessionRecord
	err  error
}

var benchCache sync.Map // name -> *benchEntry

func benchDataset(b *testing.B, name string, gen func() ([]telemetry.SessionRecord, error)) []telemetry.SessionRecord {
	b.Helper()
	v, _ := benchCache.LoadOrStore(name, &benchEntry{})
	e := v.(*benchEntry)
	e.once.Do(func() { e.recs, e.err = gen() })
	if e.err != nil {
		b.Fatal(e.err)
	}
	return e.recs
}

func benchSweep(b *testing.B, name string, configure func(*netsim.Sweep)) []telemetry.SessionRecord {
	b.Helper()
	return benchDataset(b, name, func() ([]telemetry.SessionRecord, error) {
		sw := netsim.ControlBands()
		configure(&sw)
		opts := conference.Defaults(uint64(len(name))+500, 400)
		opts.Paths = &sw
		opts.SurveyRate = 0.05
		g, err := conference.New(opts)
		if err != nil {
			return nil, err
		}
		return g.GenerateAll()
	})
}

var (
	benchCorpusOnce sync.Once
	benchCorpus     *social.Corpus
	benchCorpusCfg  social.Config
	benchNews       *newswire.Index
	benchAnalyzer   = nlp.NewAnalyzer()
)

func corpusForBench(b *testing.B) (*social.Corpus, *newswire.Index, social.Config) {
	b.Helper()
	benchCorpusOnce.Do(func() {
		benchCorpusCfg = social.DefaultConfig(99)
		var err error
		benchCorpus, err = social.Generate(benchCorpusCfg)
		if err != nil {
			panic(err)
		}
		benchNews = newswire.Build(benchCorpusCfg.Model.Launches(), benchCorpusCfg.Outages, benchCorpusCfg.Milestones)
	})
	return benchCorpus, benchNews, benchCorpusCfg
}

// --- Fig. 1 ----------------------------------------------------------------

func benchFig1(b *testing.B, name string, metric telemetry.Metric, eng telemetry.Engagement, lo, hi float64, configure func(*netsim.Sweep)) {
	recs := benchSweep(b, name, configure)
	binner := stats.NewBinner(lo, hi, 10)
	var drop float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := usaas.DoseResponse(recs, metric, eng, binner, telemetry.StudyCohort())
		if err != nil {
			b.Fatal(err)
		}
		drop = usaas.RelativeDrop(s)
	}
	b.ReportMetric(100*drop, "drop%")
}

func BenchmarkFig1Latency(b *testing.B) {
	benchFig1(b, "lat", telemetry.LatencyMean, telemetry.MicOn, 0, 300,
		func(s *netsim.Sweep) { s.LatencyMs = [2]float64{0, 300} })
}

func BenchmarkFig1Loss(b *testing.B) {
	benchFig1(b, "loss", telemetry.LossMean, telemetry.Presence, 0, 2,
		func(s *netsim.Sweep) { s.LossPct = [2]float64{0, 4} })
}

func BenchmarkFig1Jitter(b *testing.B) {
	benchFig1(b, "jit", telemetry.JitterMean, telemetry.CamOn, 0, 12,
		func(s *netsim.Sweep) { s.JitterMs = [2]float64{0, 12} })
}

func BenchmarkFig1Bandwidth(b *testing.B) {
	benchFig1(b, "bw", telemetry.BandwidthMean, telemetry.CamOn, 0.25, 4,
		func(s *netsim.Sweep) { s.BandwidthMbps = [2]float64{0.25, 4} })
}

// --- Fig. 2 ----------------------------------------------------------------

func BenchmarkFig2Compounding(b *testing.B) {
	recs := benchSweep(b, "compound", func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.LossPct = [2]float64{0, 3.5}
	})
	xb := stats.NewBinner(0, 300, 4)
	yb := stats.NewBinner(0, 3.5, 4)
	var dip float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := usaas.Compounding(recs, telemetry.LatencyMean, telemetry.LossMean,
			telemetry.Presence, xb, yb, telemetry.StudyCohort())
		if err != nil {
			b.Fatal(err)
		}
		best, worst, _ := g.BestWorst()
		dip = (best - worst) / best
	}
	b.ReportMetric(100*dip, "dip%")
}

// --- Fig. 3 ----------------------------------------------------------------

func BenchmarkFig3Platforms(b *testing.B) {
	recs := benchSweep(b, "plat", func(s *netsim.Sweep) {
		s.LossPct = [2]float64{0, 4}
	})
	binner := stats.NewBinner(0, 4, 4)
	var platforms int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series, err := usaas.ByPlatform(recs, telemetry.LossMean, telemetry.Presence, binner, telemetry.StudyCohort())
		if err != nil {
			b.Fatal(err)
		}
		platforms = len(series)
	}
	b.ReportMetric(float64(platforms), "platforms")
}

// --- Fig. 4 ----------------------------------------------------------------

func BenchmarkFig4MOS(b *testing.B) {
	recs := benchSweep(b, "mos", func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.LossPct = [2]float64{0, 3}
	})
	var pearson float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		report, err := usaas.MOSReport(recs, 10, nil)
		if err != nil {
			b.Fatal(err)
		}
		pearson = report[0].Pearson
	}
	b.ReportMetric(pearson, "presence_r")
}

// --- Table 1 ----------------------------------------------------------------

func BenchmarkCorpusStats(b *testing.B) {
	c, _, _ := corpusForBench(b)
	var posts float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		posts, _, _ = c.WeeklyAverages()
	}
	b.ReportMetric(posts, "posts/week")
}

// --- Fig. 5 ----------------------------------------------------------------

func BenchmarkFig5Peaks(b *testing.B) {
	c, news, _ := corpusForBench(b)
	var unannotated int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peaks := usaas.AnnotatePeaks(c, benchAnalyzer, news, 3)
		unannotated = 0
		for _, pk := range peaks {
			if len(pk.News) == 0 {
				unannotated++
			}
		}
	}
	b.ReportMetric(float64(unannotated), "peaks_without_news")
}

func BenchmarkFig5WordCloud(b *testing.B) {
	c, _, _ := corpusForBench(b)
	day := timeline.Date(2022, 4, 22)
	var texts []string
	for _, p := range c.OnDay(day) {
		texts = append(texts, p.Text())
	}
	var top int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cloud := nlp.WordCloud(texts, 12)
		top = len(cloud)
	}
	b.ReportMetric(float64(top), "terms")
}

// --- Fig. 6 ----------------------------------------------------------------

func BenchmarkFig6Outages(b *testing.B) {
	c, _, cfg := corpusForBench(b)
	dict := nlp.OutageDictionary()
	outageDays := map[timeline.Day]bool{}
	for _, o := range cfg.Outages {
		outageDays[o.Day] = true
	}
	var recall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := usaas.OutageKeywordSeries(c, benchAnalyzer, dict, true)
		cmp := usaas.CompareMonitors(series, outageDays, 3, 150)
		recall = float64(cmp.KeywordDetectedDays) / float64(cmp.TotalOutageDays)
	}
	b.ReportMetric(100*recall, "recall%")
}

// --- Fig. 7 ----------------------------------------------------------------

func BenchmarkFig7Speeds(b *testing.B) {
	c, _, cfg := corpusForBench(b)
	var corr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		months := usaas.MonthlySpeeds(c, benchAnalyzer, cfg.Model, 7)
		corr = usaas.AnalyzeConditioning(months).SpeedPosCorrelation
	}
	b.ReportMetric(corr, "speed_pos_r")
}

// --- Roaming ----------------------------------------------------------------

func BenchmarkRoamingLeadTime(b *testing.B) {
	c, _, _ := corpusForBench(b)
	tweet := timeline.Date(2022, 3, 3)
	var lead int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		trends := usaas.MineTrends(c, benchAnalyzer, usaas.TrendOptions{})
		lead, _ = usaas.LeadTime(trends, "roaming", tweet)
	}
	b.ReportMetric(float64(lead), "lead_days")
}

// --- Fig. 8 / §5: the service ----------------------------------------------

func BenchmarkUSaaSQuery(b *testing.B) {
	recs := benchSweep(b, "svc", func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
	})
	srv := usaas.NewServer(nil, usaas.ServerOptions{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := usaas.NewClient(ts.URL, ts.Client())
	ctx := context.Background()
	if _, err := client.IngestSessions(ctx, recs); err != nil {
		b.Fatal(err)
	}
	q := usaas.EngagementQuery{
		Metric: telemetry.LatencyMean, Engagement: telemetry.MicOn,
		Lo: 0, Hi: 300, Bins: 10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Engagement(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMOSPredictor(b *testing.B) {
	recs := benchSweep(b, "pred", func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.LossPct = [2]float64{0, 3}
	})
	var mae float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval, err := usaas.EvaluateMOSPredictor(recs, 0.7, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		mae = eval.PredictorMAE
	}
	b.ReportMetric(mae, "mae")
}

// --- ablations (DESIGN.md §5) ------------------------------------------------

// BenchmarkAblationMitigationOff re-runs the Fig. 1 loss panel with the
// media safeguards disabled: the flat curve steepens, showing the paper's
// explanation ("application layer safeguards") is what the simulator
// encodes.
func BenchmarkAblationMitigationOff(b *testing.B) {
	gen := func(m media.Mitigation, seed uint64) []telemetry.SessionRecord {
		sw := netsim.ControlBands()
		sw.LossPct = [2]float64{0, 2}
		opts := conference.Defaults(seed, 200)
		opts.Paths = &sw
		opts.Mitigation = m
		g, err := conference.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		recs, err := g.GenerateAll()
		if err != nil {
			b.Fatal(err)
		}
		return recs
	}
	binner := stats.NewBinner(0, 2, 6)
	var onDrop, offDrop float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		on := gen(media.DefaultMitigation(), 900)
		off := gen(media.Mitigation{AdaptiveJitterBuf: true, VideoRateAdaptation: true}, 900)
		sOn, _ := usaas.DoseResponse(on, telemetry.LossMean, telemetry.Presence, binner, nil)
		sOff, _ := usaas.DoseResponse(off, telemetry.LossMean, telemetry.Presence, binner, nil)
		onDrop = usaas.RelativeDrop(sOn)
		offDrop = usaas.RelativeDrop(sOff)
	}
	b.ReportMetric(100*onDrop, "drop_mitigated%")
	b.ReportMetric(100*offDrop, "drop_unmitigated%")
}

// BenchmarkAblationSentimentGate measures how many keyword occurrences the
// Fig. 6 negative-sentiment gate removes (false-positive suppression).
func BenchmarkAblationSentimentGate(b *testing.B) {
	c, _, _ := corpusForBench(b)
	dict := nlp.OutageDictionary()
	var removedFrac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gated := usaas.OutageKeywordSeries(c, benchAnalyzer, dict, true)
		ungated := usaas.OutageKeywordSeries(c, benchAnalyzer, dict, false)
		var g, u int
		for j := range gated {
			g += gated[j].Count
			u += ungated[j].Count
		}
		removedFrac = 1 - float64(g)/float64(u)
	}
	b.ReportMetric(100*removedFrac, "removed%")
}

// BenchmarkAblationConditioningOff regenerates the corpus without the
// expectation term and checks the Fig. 7 anomaly disappears.
func BenchmarkAblationConditioningOff(b *testing.B) {
	var anomaly float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := social.DefaultConfig(77)
		cfg.ConditioningOff = true
		c, err := social.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		months := usaas.MonthlySpeeds(c, benchAnalyzer, cfg.Model, 7)
		if usaas.AnalyzeConditioning(months).DecemberBelowApril {
			anomaly = 1
		}
	}
	b.ReportMetric(anomaly, "anomaly_present")
}

// BenchmarkAblationP95Metric reruns the Fig. 1 latency panel on P95
// session aggregates instead of means (the paper: "similar trends hold").
func BenchmarkAblationP95Metric(b *testing.B) {
	recs := benchSweep(b, "lat", func(s *netsim.Sweep) { s.LatencyMs = [2]float64{0, 300} })
	binner := stats.NewBinner(0, 400, 10)
	var drop float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := usaas.DoseResponse(recs, telemetry.LatencyP95, telemetry.MicOn, binner, telemetry.StudyCohort())
		if err != nil {
			b.Fatal(err)
		}
		drop = usaas.RelativeDrop(s)
	}
	b.ReportMetric(100*drop, "drop%")
}

// --- §6 extensions ------------------------------------------------------------

func BenchmarkConfounderReport(b *testing.B) {
	recs := benchSweep(b, "conf", func(s *netsim.Sweep) {})
	var spread float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		effects, err := usaas.ConfounderReport(recs, telemetry.CamOn)
		if err != nil {
			b.Fatal(err)
		}
		spread = effects[0].Spread
	}
	b.ReportMetric(100*spread, "platform_spread%")
}

func BenchmarkTrafficEngineeringAdvice(b *testing.B) {
	recs := benchSweep(b, "te", func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.JitterMs = [2]float64{0, 12}
	})
	var topLift float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recos, err := usaas.AdviseTrafficEngineering(recs)
		if err != nil {
			b.Fatal(err)
		}
		topLift = recos[0].TotalLift
	}
	b.ReportMetric(topLift, "top_lift_mos")
}

func BenchmarkDeploymentAdvice(b *testing.B) {
	model := leoModel()
	from := timeline.Date(2022, 6, 1)
	horizon := timeline.Date(2022, 12, 1)
	var marginal float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		advice, err := usaas.AdviseDeployment(model, from, horizon, 8, 50, 0)
		if err != nil {
			b.Fatal(err)
		}
		marginal = advice.Scenarios[1].ProjectedSpeed - advice.Scenarios[0].ProjectedSpeed
	}
	b.ReportMetric(marginal, "mbps_per_launch")
}

func leoModel() *leo.Model { return leo.NewModel() }

// BenchmarkMOSTreeVsRidge contrasts the two §5 predictor families.
func BenchmarkMOSTreeVsRidge(b *testing.B) {
	recs := benchSweep(b, "pred", func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.LossPct = [2]float64{0, 3}
	})
	var ridgeMAE, treeMAE float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval, err := usaas.EvaluateMOSPredictor(recs, 0.7, 1.0)
		if err != nil {
			b.Fatal(err)
		}
		ridgeMAE, treeMAE = eval.PredictorMAE, eval.TreeMAE
	}
	b.ReportMetric(ridgeMAE, "ridge_mae")
	b.ReportMetric(treeMAE, "tree_mae")
}

// BenchmarkIncidentDetection measures the engagement incident monitor on a
// workload with an injected week-long network incident, reporting both the
// engagement monitor's recall and the survey-based strawman's.
func BenchmarkIncidentDetection(b *testing.B) {
	truth := timeline.Range{
		From: timeline.Date(2022, 2, 7),
		To:   timeline.Date(2022, 2, 13),
	}
	recs := benchDataset(b, "incident", func() ([]telemetry.SessionRecord, error) {
		opts := conference.Defaults(404, 1500)
		opts.Window = timeline.Range{From: timeline.Date(2022, 1, 10), To: timeline.Date(2022, 3, 10)}
		bad := netsim.ControlBands()
		bad.LatencyMs = [2]float64{220, 320}
		bad.LossPct = [2]float64{2, 4}
		opts.DegradedWindow = truth
		opts.DegradedPaths = &bad
		g, err := conference.New(opts)
		if err != nil {
			return nil, err
		}
		return g.GenerateAll()
	})
	var engRecall, mosRecall float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		days := usaas.DailyEngagement(recs, nil)
		eng := usaas.EngagementIncidents(days, telemetry.Presence, usaas.IncidentOptions{})
		mos := usaas.MOSIncidents(days, usaas.IncidentOptions{MinSessions: 1})
		engRecall, _ = usaas.IncidentRecall(eng, truth)
		mosRecall, _ = usaas.IncidentRecall(mos, truth)
	}
	b.ReportMetric(100*engRecall, "engagement_recall%")
	b.ReportMetric(100*mosRecall, "survey_recall%")
}

// BenchmarkLongitudinalConditioning measures the §6 long-term-conditioning
// effect over a persistent user pool: the presence gap between bad sessions
// preceded by bad versus good history.
func BenchmarkLongitudinalConditioning(b *testing.B) {
	recs := benchDataset(b, "longitudinal", func() ([]telemetry.SessionRecord, error) {
		good := netsim.AccessProfile{Name: "good", LatencyMedianMs: 20, LatencySpread: 1.2,
			JitterMedianMs: 1.5, JitterSpread: 1.3, CapacityMedianMbps: 3.5, CapacitySpread: 1.1}
		awful := netsim.AccessProfile{Name: "awful", LatencyMedianMs: 260, LatencySpread: 1.15,
			JitterMedianMs: 4, JitterSpread: 1.3, CapacityMedianMbps: 3.5, CapacitySpread: 1.1,
			LossyProb: 1, LossScalePct: 1.2}
		opts := conference.Defaults(606, 1200)
		opts.Paths = &netsim.Mixture{Profiles: []netsim.AccessProfile{good, awful}, Weights: []float64{0.5, 0.5}}
		opts.UserPool = 400
		opts.UserConditioningAlpha = 0.8
		opts.ConditioningWeight = 0.9
		g, err := conference.New(opts)
		if err != nil {
			return nil, err
		}
		return g.GenerateAll()
	})
	var effect float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		effect = usaas.AnalyzeLongitudinalConditioning(recs).Effect()
	}
	b.ReportMetric(effect, "presence_pts")
}

// --- parallel engine ---------------------------------------------------------

// benchSpeedup times fn at one worker and at all cores inside the same b.N
// loop and reports the ratio as "speedup_x". On a single-core machine the
// ratio hovers near (or slightly below) 1 from pool overhead; on multi-core
// hardware it tracks the core count.
func benchSpeedup(b *testing.B, fn func(workers int)) {
	b.Helper()
	all := runtime.GOMAXPROCS(0)
	var serial, par time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		fn(1)
		serial += time.Since(t0)
		t0 = time.Now()
		fn(all)
		par += time.Since(t0)
	}
	b.ReportMetric(float64(all), "workers")
	b.ReportMetric(serial.Seconds()/par.Seconds(), "speedup_x")
}

// BenchmarkGenerateParallel measures sharded conference generation against
// the serial path (identical output, see determinism tests).
func BenchmarkGenerateParallel(b *testing.B) {
	benchSpeedup(b, func(workers int) {
		sw := netsim.ControlBands()
		sw.LatencyMs = [2]float64{0, 300}
		opts := conference.Defaults(7700, 300)
		opts.Paths = &sw
		opts.Workers = workers
		g, err := conference.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.GenerateAll(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkSocialGenerateParallel measures day-sharded corpus generation.
func BenchmarkSocialGenerateParallel(b *testing.B) {
	benchSpeedup(b, func(workers int) {
		cfg := social.DefaultConfig(7701)
		cfg.Workers = workers
		if _, err := social.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkDoseResponseParallel measures chunk-sharded Fig-1 analysis.
func BenchmarkDoseResponseParallel(b *testing.B) {
	recs := benchSweep(b, "lat", func(s *netsim.Sweep) { s.LatencyMs = [2]float64{0, 300} })
	binner := stats.NewBinner(0, 300, 10)
	benchSpeedup(b, func(workers int) {
		if _, err := usaas.DoseResponseN(recs, telemetry.LatencyMean, telemetry.MicOn,
			binner, telemetry.StudyCohort(), workers); err != nil {
			b.Fatal(err)
		}
	})
}

// --- serving fast path (PR 3) ------------------------------------------------

// synthSessions fabricates a large telemetry dataset directly (no media
// simulation), sized to make the O(all data) versus O(new data) contrast on
// the query path visible.
func synthSessions(n int) []telemetry.SessionRecord {
	rng := simrand.Root(42).Derive("bench/synth-sessions").RNG()
	platforms := []string{"desktop", "mobile", "web"}
	isps := []string{"starlink", "comcast", "verizon", "telstra"}
	base := time.Date(2022, 2, 1, 0, 0, 0, 0, time.UTC)
	recs := make([]telemetry.SessionRecord, n)
	for i := range recs {
		r := &recs[i]
		r.CallID = uint64(i / 4)
		r.UserID = rng.Uint64() % 50000
		r.Platform = platforms[rng.Intn(len(platforms))]
		r.MeetingSize = 2 + rng.Intn(10)
		r.Start = base.Add(time.Duration(rng.Intn(90*24)) * time.Hour)
		r.DurationSec = 60 + 3000*rng.Float64()
		lat := rng.Range(5, 300)
		loss := rng.Range(0, 4)
		jit := rng.Range(0, 12)
		bw := rng.Range(0.25, 8)
		r.Net = telemetry.NetAggregates{
			LatencyMean: lat, LatencyMedian: lat * 0.9, LatencyP95: lat * 1.4,
			LossMean: loss, LossMedian: loss * 0.8, LossP95: loss * 1.6,
			JitterMean: jit, JitterMedian: jit * 0.9, JitterP95: jit * 1.5,
			BWMean: bw, BWMedian: bw * 0.95, BWP95: bw * 1.2,
		}
		r.PresencePct = 100 * rng.Float64()
		r.CamOnPct = 100 * rng.Float64()
		r.MicOnPct = 100 * rng.Float64()
		r.LeftEarly = rng.Bool(0.1)
		if rng.Bool(0.05) {
			r.Rated = true
			r.Rating = 1 + rng.Intn(5)
		}
		r.Country = "US"
		r.Enterprise = rng.Bool(0.7)
		r.ISP = isps[rng.Intn(len(isps))]
	}
	return recs
}

var (
	synthOnce    sync.Once
	synthRecs    []telemetry.SessionRecord
	synthNDJSON  []byte
	synthDecoded int
)

// synthData returns the shared 100k-session dataset and its NDJSON encoding
// (the first 20k records — enough bytes to dominate fixed costs).
func synthData(b *testing.B) ([]telemetry.SessionRecord, []byte) {
	b.Helper()
	synthOnce.Do(func() {
		synthRecs = synthSessions(100_000)
		enc, err := telemetry.AppendNDJSON(nil, synthRecs[:20_000])
		if err != nil {
			panic(err)
		}
		synthNDJSON = enc
		synthDecoded = 20_000
	})
	return synthRecs, synthNDJSON
}

// BenchmarkIngestNDJSON decodes the ingest wire format with the pooled
// telemetry codec — the server's hot path for session uploads.
func BenchmarkIngestNDJSON(b *testing.B) {
	_, enc := synthData(b)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := telemetry.ReadJSONL(bytes.NewReader(enc), func(r *telemetry.SessionRecord) error {
			n++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != synthDecoded {
			b.Fatalf("decoded %d records, want %d", n, synthDecoded)
		}
	}
}

// BenchmarkIngestNDJSONStdlib is the encoding/json baseline for the same
// decode (what the handler did before the codec).
func BenchmarkIngestNDJSONStdlib(b *testing.B) {
	_, enc := synthData(b)
	b.SetBytes(int64(len(enc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := bufio.NewScanner(bytes.NewReader(enc))
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		n := 0
		for sc.Scan() {
			var r telemetry.SessionRecord
			if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
				b.Fatal(err)
			}
			n++
		}
		if err := sc.Err(); err != nil {
			b.Fatal(err)
		}
		if n != synthDecoded {
			b.Fatalf("decoded %d records, want %d", n, synthDecoded)
		}
	}
}

// BenchmarkEncodeNDJSON measures the client-side upload encoding.
func BenchmarkEncodeNDJSON(b *testing.B) {
	recs, _ := synthData(b)
	recs = recs[:20_000]
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = telemetry.AppendNDJSON(buf[:0], recs)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(buf)))
	}
}

// BenchmarkEncodeNDJSONStdlib is the encoding/json baseline for the encode.
func BenchmarkEncodeNDJSONStdlib(b *testing.B) {
	recs, _ := synthData(b)
	recs = recs[:20_000]
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		enc := json.NewEncoder(&buf)
		for j := range recs {
			if err := enc.Encode(&recs[j]); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	}
}

// synthServer builds a service over the 100k-session store.
func synthServer(b *testing.B, opts usaas.ServerOptions) (*usaas.Client, func()) {
	b.Helper()
	recs, _ := synthData(b)
	store := &usaas.Store{}
	store.AddSessions(recs)
	srv := usaas.NewServer(store, opts)
	ts := httptest.NewServer(srv.Handler())
	return usaas.NewClient(ts.URL, ts.Client()), ts.Close
}

// BenchmarkReportCold measures /v1/report with the result cache disabled:
// every request assembles the full operator report.
func BenchmarkReportCold(b *testing.B) {
	client, closeFn := synthServer(b, usaas.ServerOptions{ResultCacheSize: -1})
	defer closeFn()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Report(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReportWarm measures /v1/report served from the generation-keyed
// result cache (the steady state between ingests).
func BenchmarkReportWarm(b *testing.B) {
	client, closeFn := synthServer(b, usaas.ServerOptions{})
	defer closeFn()
	ctx := context.Background()
	if _, err := client.Report(ctx); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Report(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

var synthEngQuery = usaas.EngagementQuery{
	Metric: telemetry.LatencyMean, Engagement: telemetry.Presence,
	Lo: 0, Hi: 300, Bins: 10,
}

// BenchmarkEngagementRecompute is the pre-view cost model: fold the full
// store for every dose-response query.
func BenchmarkEngagementRecompute(b *testing.B) {
	recs, _ := synthData(b)
	binner := stats.NewBinner(0, 300, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := usaas.DoseResponse(recs, telemetry.LatencyMean, telemetry.Presence, binner, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngagementView reads the same series from the store's
// materialized accumulator (view hit, no HTTP, no result cache).
func BenchmarkEngagementView(b *testing.B) {
	recs, _ := synthData(b)
	store := &usaas.Store{}
	store.AddSessions(recs)
	binner := stats.NewBinner(0, 300, 10)
	store.DoseResponseSeries(telemetry.LatencyMean, telemetry.Presence, binner, "") // register
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store.DoseResponseSeries(telemetry.LatencyMean, telemetry.Presence, binner, "")
	}
}

// BenchmarkEngagementWarm measures the full HTTP round trip for a cached
// engagement query.
func BenchmarkEngagementWarm(b *testing.B) {
	client, closeFn := synthServer(b, usaas.ServerOptions{})
	defer closeFn()
	ctx := context.Background()
	if _, err := client.Engagement(ctx, synthEngQuery); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Engagement(ctx, synthEngQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ----------------------------------------------

func BenchmarkMediaEvaluate(b *testing.B) {
	m := media.DefaultMitigation()
	for i := 0; i < b.N; i++ {
		media.Evaluate(float64(i%300), float64(i%4), float64(i%12), 3.5, m)
	}
}

func BenchmarkSentimentScore(b *testing.B) {
	text := "Constant buffering and lag this week. Very frustrating experience, almost unusable."
	for i := 0; i < b.N; i++ {
		benchAnalyzer.Score(text)
	}
}

func BenchmarkOCRExtract(b *testing.B) {
	r := ocr.Report{Provider: ocr.Ookla, DownMbps: 95.4, UpMbps: 12.3, LatencyMs: 42}
	shot := ocr.RenderNoisy(r, simrand.New(1, 2), 0.03)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ocr.Extract(shot); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCallGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		opts := conference.Defaults(uint64(i), 10)
		g, err := conference.New(opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.GenerateAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathSampling(b *testing.B) {
	p := netsim.NewPath(netsim.PathConfig{BaseLatencyMs: 50, BaseLossPct: 0.5, BaseJitterMs: 3, CapacityMbps: 4,
		LossBurstRate: 0.01, JitterSpikeRate: 0.01, BandwidthDipRate: 0.01, UtilizationJitter: 0.3}, simrand.New(3, 4))
	for i := 0; i < b.N; i++ {
		p.Next()
	}
}
