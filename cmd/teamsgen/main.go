// Command teamsgen generates a synthetic conferencing-telemetry dataset —
// the MS Teams stand-in of §3 — as CSV or JSON Lines.
//
// Usage:
//
//	teamsgen -calls 20000 -seed 1 -out calls.csv
//	teamsgen -calls 5000 -sweep latency -out latency-sweep.csv
//
// With -sweep, one network metric is drawn uniformly over its Fig. 1 range
// while the others stay inside the paper's control bands, giving dense
// coverage of every bin of the corresponding figure.
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/telemetry"
)

func main() {
	var (
		seed       = flag.Uint64("seed", 1, "generation seed (datasets are deterministic per seed)")
		calls      = flag.Int("calls", 5000, "number of calls to generate")
		out        = flag.String("out", "calls.csv", "output path (.csv or .jsonl)")
		sweep      = flag.String("sweep", "", "sweep one metric over its figure range: latency|loss|jitter|bandwidth")
		surveyRate = flag.Float64("survey-rate", telemetry.DefaultSurveyRate, "fraction of sessions prompted for a rating")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines to shard calls across (output is identical at any count)")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()
	if err := run(*seed, *calls, *out, *sweep, *surveyRate, *workers, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "teamsgen:", err)
		os.Exit(1)
	}
}

func run(seed uint64, calls int, out, sweep string, surveyRate float64, workers int, quiet bool) error {
	opts := conference.Defaults(seed, calls)
	opts.SurveyRate = surveyRate
	opts.Workers = workers
	if sweep != "" {
		sw := netsim.ControlBands()
		switch sweep {
		case "latency":
			sw.LatencyMs = [2]float64{0, 300}
		case "loss":
			sw.LossPct = [2]float64{0, 4}
		case "jitter":
			sw.JitterMs = [2]float64{0, 12}
		case "bandwidth":
			sw.BandwidthMbps = [2]float64{0.25, 4}
		default:
			return fmt.Errorf("unknown sweep %q (latency|loss|jitter|bandwidth)", sweep)
		}
		opts.Paths = &sw
	}

	g, err := conference.New(opts)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	// Transparent gzip when the path ends in .gz.
	var sink io.Writer = f
	var gz *gzip.Writer
	logical := out
	if strings.EqualFold(filepath.Ext(out), ".gz") {
		gz = gzip.NewWriter(f)
		sink = gz
		logical = strings.TrimSuffix(out, filepath.Ext(out))
	}

	var write func(*telemetry.SessionRecord) error
	var flush func() error
	switch strings.ToLower(filepath.Ext(logical)) {
	case ".jsonl":
		w := telemetry.NewJSONLWriter(sink)
		write, flush = w.Write, w.Flush
	case ".csv":
		w := telemetry.NewCSVWriter(sink)
		write, flush = w.Write, w.Flush
	default:
		return fmt.Errorf("unsupported extension on %q (use .csv or .jsonl, optionally .gz)", out)
	}

	n := 0
	if err := g.Generate(func(r *telemetry.SessionRecord) error {
		n++
		if !quiet && n%50000 == 0 {
			fmt.Fprintf(os.Stderr, "  %d sessions...\n", n)
		}
		return write(r)
	}); err != nil {
		return err
	}
	if err := flush(); err != nil {
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			return fmt.Errorf("closing gzip stream: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if !quiet {
		fmt.Printf("wrote %d sessions from %d calls to %s (seed %d)\n", n, calls, out, seed)
	}
	return nil
}
