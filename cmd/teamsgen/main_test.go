package main

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"testing"

	"usersignals/internal/telemetry"
)

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "calls.csv")
	if err := run(1, 20, out, "", 0.05, 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	if err := telemetry.ReadCSV(f, func(*telemetry.SessionRecord) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n < 40 {
		t.Fatalf("only %d sessions from 20 calls", n)
	}
}

func TestRunJSONL(t *testing.T) {
	out := filepath.Join(t.TempDir(), "calls.jsonl")
	if err := run(1, 10, out, "", 0.05, 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := 0
	if err := telemetry.ReadJSONL(f, func(*telemetry.SessionRecord) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no sessions written")
	}
}

func TestRunSweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	if err := run(2, 30, out, "latency", 0.05, 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var maxLat float64
	if err := telemetry.ReadCSV(f, func(r *telemetry.SessionRecord) error {
		if r.Net.LatencyMean > maxLat {
			maxLat = r.Net.LatencyMean
		}
		// Control bands hold.
		if r.Net.BWMean < 2.5 || r.Net.BWMean > 4.5 {
			t.Fatalf("bandwidth out of control band: %v", r.Net.BWMean)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if maxLat < 150 {
		t.Fatalf("latency sweep max %v; range not covered", maxLat)
	}
}

func TestRunGzipOutput(t *testing.T) {
	out := filepath.Join(t.TempDir(), "calls.csv.gz")
	if err := run(1, 10, out, "", 0.05, 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("output is not gzip: %v", err)
	}
	n := 0
	if err := telemetry.ReadCSV(gz, func(*telemetry.SessionRecord) error {
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no sessions in gzip output")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run(1, 5, filepath.Join(dir, "x.txt"), "", 0.05, 0, true); err == nil {
		t.Fatal("bad extension accepted")
	}
	if err := run(1, 5, filepath.Join(dir, "x.csv"), "warp-speed", 0.05, 0, true); err == nil {
		t.Fatal("unknown sweep accepted")
	}
	if err := run(1, 5, filepath.Join(dir, "nope", "x.csv"), "", 0.05, 0, true); err == nil {
		t.Fatal("unwritable path accepted")
	}
}

func TestDeterministicOutput(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.csv")
	b := filepath.Join(dir, "b.csv")
	if err := run(7, 10, a, "", 0.05, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := run(7, 10, b, "", 0.05, 0, true); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Fatal("same seed produced different files")
	}
}
