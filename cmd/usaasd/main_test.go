package main

import (
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"usersignals/internal/conference"
	"usersignals/internal/durable"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/usaas"
)

func writeSessionsCSV(t *testing.T, path string, n int) int {
	t.Helper()
	g, err := conference.New(conference.Defaults(1, n))
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := telemetry.NewCSVWriter(f)
	count := 0
	if err := g.Generate(func(r *telemetry.SessionRecord) error {
		count++
		return w.Write(r)
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return count
}

func TestLoadSessionsCSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calls.csv")
	want := writeSessionsCSV(t, path, 15)
	store := &usaas.Store{}
	got, _, err := loadSessions(store, path, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("loaded %d, wrote %d", got, want)
	}
	sessions, _ := store.Counts()
	if sessions != want {
		t.Fatalf("store holds %d", sessions)
	}
}

func TestLoadSessionsErrors(t *testing.T) {
	store := &usaas.Store{}
	if _, _, err := loadSessions(store, filepath.Join(t.TempDir(), "missing.csv"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSessions(store, bad, ""); err == nil {
		t.Fatal("bad extension accepted")
	}
}

func TestLoadPosts(t *testing.T) {
	cfg := social.DefaultConfig(2)
	corpus, err := social.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "posts.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	const n = 500
	for i := 0; i < n; i++ {
		if err := enc.Encode(&corpus.Posts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	store := &usaas.Store{}
	got, _, err := loadPosts(store, path, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != n {
		t.Fatalf("loaded %d", got)
	}
	if store.Corpus() == nil || store.Corpus().Len() != n {
		t.Fatal("corpus not rebuilt")
	}
}

func TestLoadSessionsGzip(t *testing.T) {
	dir := t.TempDir()
	plain := filepath.Join(dir, "calls.csv")
	want := writeSessionsCSV(t, plain, 10)
	// Compress it.
	data, err := os.ReadFile(plain)
	if err != nil {
		t.Fatal(err)
	}
	gzPath := filepath.Join(dir, "calls.csv.gz")
	f, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	if _, err := gz.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	store := &usaas.Store{}
	got, _, err := loadSessions(store, gzPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("gzip load %d, want %d", got, want)
	}
	// A non-gzip file with a .gz name must fail loudly.
	fake := filepath.Join(dir, "fake.csv.gz")
	if err := os.WriteFile(fake, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadSessions(store, fake, ""); err == nil {
		t.Fatal("bogus gzip accepted")
	}
}

func TestLoadPostsErrors(t *testing.T) {
	store := &usaas.Store{}
	if _, _, err := loadPosts(store, filepath.Join(t.TempDir(), "missing.jsonl"), ""); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte("{broken\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadPosts(store, bad, ""); err == nil {
		t.Fatal("broken JSON accepted")
	}
}

// TestPreloadDurableDedup: with -data-dir, a preload file is journaled
// under a path-derived batch ID, so restarting the daemon with the same
// flags does not double the dataset — recovery already replayed it.
func TestPreloadDurableDedup(t *testing.T) {
	path := filepath.Join(t.TempDir(), "calls.csv")
	want := writeSessionsCSV(t, path, 12)
	dataDir := t.TempDir()

	d, err := usaas.OpenDurableStore(usaas.DurabilityOptions{Dir: dataDir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	n, dup, err := loadSessions(d.Store, path, preloadBatchID(dataDir, path))
	if err != nil || dup || n != want {
		t.Fatalf("first preload: n=%d dup=%v err=%v", n, dup, err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := usaas.OpenDurableStore(usaas.DurabilityOptions{Dir: dataDir, Fsync: durable.FsyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, dup, err = loadSessions(d2.Store, path, preloadBatchID(dataDir, path)); err != nil || !dup {
		t.Fatalf("restart preload not deduped: dup=%v err=%v", dup, err)
	}
	if sessions, _ := d2.Counts(); sessions != want {
		t.Fatalf("store holds %d sessions after restart, want %d", sessions, want)
	}
}
