// Command usaasd runs the User Signals as-a-Service HTTP server (§5),
// optionally preloading generated datasets.
//
// Usage:
//
//	usaasd -addr :8080 -sessions calls.csv -posts posts.jsonl \
//	    -read-timeout 2m -write-timeout 2m -idle-timeout 2m \
//	    -request-timeout 1m -max-inflight 256 -result-cache 256 \
//	    -data-dir /var/lib/usaasd -fsync batch -snapshot-every 1024
//
// With -data-dir set, every accepted ingest batch is appended to a
// write-ahead log before it is acknowledged, and snapshots bound
// recovery time; on restart the store is rebuilt byte-identically from
// the newest snapshot plus the log tail. SIGINT/SIGTERM drains in-flight
// requests for up to -shutdown-timeout, flushes the log, writes a final
// snapshot, and exits 0 (nonzero when the drain times out).
//
// With -role=leader the node serves its WAL as a replication feed under
// /v1/replica/; a -role=follower node bootstraps from the leader's
// snapshot, tails the feed, applies every record through the normal
// ingest path (so its store — and its own WAL — are byte-identical to
// the leader's), redirects writes to the leader, and serves reads with
// explicit staleness headers, refusing past -max-replica-lag. POST
// /v1/replica/promote flips a follower to leader during failover.
//
// With -role=coordinator the process owns no store at all: -shards names
// the fleet ("a=http://host:8080;b=http://h1:8080,http://h2:8080" — a
// comma-separated list is a replicated pair the coordinator fails over
// between), ingest routes to shards by calendar day, and queries
// scatter-gather mergeable partials so the cluster answers
// byte-identically to a single node holding all the data (see
// internal/cluster).
//
// Endpoints (all JSON):
//
//	POST /v1/sessions             ingest session records (array)
//	POST /v1/posts                ingest social posts (array)
//	GET  /v1/stats                store counts
//	GET  /v1/insights/engagement  dose-response curves (Fig. 1)
//	GET  /v1/insights/mos         engagement↔MOS + predictor (Fig. 4, §5)
//	GET  /v1/insights/sentiment   daily sentiment series (Fig. 5a)
//	GET  /v1/insights/peaks       annotated sentiment peaks (Fig. 5)
//	GET  /v1/insights/outages     outage-keyword series / alerts (Fig. 6)
//	GET  /v1/insights/speeds      monthly OCR speed medians (Fig. 7)
//	GET  /v1/insights/trends      emerging discussion topics
//	GET  /v1/query/experience     cross-source ISP experience query (§5)
//	GET  /v1/insights/confounders confounder effects at controlled network (§6)
//	GET  /v1/advice/traffic-engineering  ranked network improvements (§6)
//	GET  /v1/advice/deployment    launch-plan scenarios vs sentiment (§6)
//	GET  /v1/report               composed operator report (add ?format=text)
package main

import (
	"compress/gzip"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux; served only with -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"usersignals/internal/cluster"
	"usersignals/internal/durable"
	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/replica"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/usaas"
)

// serverConfig carries the listener, fault-tolerance, and durability
// knobs from flags.
type serverConfig struct {
	addr           string
	token          string
	readTimeout    time.Duration
	writeTimeout   time.Duration
	idleTimeout    time.Duration
	requestTimeout time.Duration
	maxInflight    int
	resultCache    int
	dataDir        string
	fsync          string
	fsyncInterval  time.Duration
	groupCommit    bool
	groupDelay     time.Duration
	snapshotEvery  int
	applyWorkers   int
	columnar       bool
	admitRate      float64
	admitBurst     float64
	pprofAddr      string

	role            string
	leaderURL       string
	maxReplicaLag   time.Duration
	shutdownTimeout time.Duration
	shards          string
}

func main() {
	var (
		cfg      serverConfig
		sessions = flag.String("sessions", "", "preload session records (.csv or .jsonl, optionally .gz)")
		posts    = flag.String("posts", "", "preload social posts (.jsonl, optionally .gz)")
	)
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address")
	flag.StringVar(&cfg.token, "token", "", "require this bearer token on every request")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 2*time.Minute, "max time to read a full request (ingest bodies included); 0 disables")
	flag.DurationVar(&cfg.writeTimeout, "write-timeout", 2*time.Minute, "max time to write a response; 0 disables")
	flag.DurationVar(&cfg.idleTimeout, "idle-timeout", 2*time.Minute, "max keep-alive idle time per connection; 0 disables")
	flag.DurationVar(&cfg.requestTimeout, "request-timeout", time.Minute, "per-request handling deadline (503 past it); <0 disables")
	flag.IntVar(&cfg.maxInflight, "max-inflight", 0, "max concurrently handled requests (429 past it); 0 disables")
	flag.Float64Var(&cfg.admitRate, "admit-rate", 0, "per-tenant ingest admission rate in batches/sec (429 + Retry-After past it, keyed by "+usaas.TenantHeader+"); 0 disables")
	flag.Float64Var(&cfg.admitBurst, "admit-burst", 0, "per-tenant ingest admission burst (defaults to -admit-rate)")
	flag.IntVar(&cfg.resultCache, "result-cache", 0, "generation-keyed result cache entries (0 = default 256; <0 disables)")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "durable data directory (write-ahead log + snapshots); empty = in-memory only")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "WAL fsync policy: batch (sync every batch), interval (background cadence), or off")
	flag.DurationVar(&cfg.fsyncInterval, "fsync-interval", time.Second, "background sync cadence under -fsync=interval")
	flag.BoolVar(&cfg.groupCommit, "group-commit", true, "under -fsync=batch, coalesce concurrent appends into one fsync per commit group")
	flag.DurationVar(&cfg.groupDelay, "group-delay", 0, "group-commit linger: let a sealed group wait this long for more batches before its fsync (0 = sync as soon as the scheduler is free)")
	flag.IntVar(&cfg.snapshotEvery, "snapshot-every", 1024, "snapshot after this many logged batches and on shutdown; 0 disables snapshots")
	flag.IntVar(&cfg.applyWorkers, "apply-workers", 0, "apply-pipeline workers: journal and ack under the sequencing lock, fold batches into memory on this many workers (0 = apply inline; report bytes are identical either way)")
	flag.StringVar(&cfg.pprofAddr, "pprof-addr", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables")
	flag.BoolVar(&cfg.columnar, "columnar", true, "maintain the columnar session mirror for fast analyses (false = row path only)")
	flag.StringVar(&cfg.role, "role", "", "node role: leader (serve the WAL frame feed), follower (tail a leader), or coordinator (storeless scatter-gather front end over -shards); empty = standalone")
	flag.StringVar(&cfg.leaderURL, "leader", "", "leader base URL (e.g. http://10.0.0.1:8080); required with -role=follower")
	flag.StringVar(&cfg.shards, "shards", "", "shard fleet for -role=coordinator: semicolon-separated name=url[,url] (comma = replicated pair)")
	flag.DurationVar(&cfg.maxReplicaLag, "max-replica-lag", 0, "follower staleness bound: reads answer 503 once the leader has not been heard from for this long; 0 = serve any staleness (with lag headers)")
	flag.DurationVar(&cfg.shutdownTimeout, "shutdown-timeout", 10*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM; exits nonzero when exceeded")
	flag.Parse()
	if err := run(cfg, *sessions, *posts); err != nil {
		fmt.Fprintln(os.Stderr, "usaasd:", err)
		os.Exit(1)
	}
}

func run(cfg serverConfig, sessionsPath, postsPath string) error {
	var (
		store  *usaas.Store
		dstore *usaas.DurableStore
	)
	switch cfg.role {
	case "coordinator":
		return runCoordinator(cfg, sessionsPath, postsPath)
	case "", string(replica.RoleLeader), string(replica.RoleFollower):
	default:
		return fmt.Errorf("-role must be %q, %q, or %q, got %q", replica.RoleLeader, replica.RoleFollower, "coordinator", cfg.role)
	}
	if cfg.shards != "" {
		return errors.New("-shards requires -role=coordinator")
	}
	if cfg.role != "" && cfg.dataDir == "" {
		return errors.New("-role requires -data-dir: replication ships the write-ahead log")
	}
	if cfg.role == string(replica.RoleFollower) {
		if cfg.leaderURL == "" {
			return errors.New("-role=follower requires -leader")
		}
		if sessionsPath != "" || postsPath != "" {
			return errors.New("a follower cannot preload datasets; ingest through the leader")
		}
		// Seed an empty data directory from the leader's newest snapshot so
		// the follower does not need the leader's whole (possibly partially
		// compacted) log. No-op when the directory already holds state.
		installed, err := replica.Bootstrap(context.Background(), cfg.dataDir, cfg.leaderURL, cfg.token, nil)
		if err != nil {
			return fmt.Errorf("bootstrapping from leader %q: %w", cfg.leaderURL, err)
		}
		if installed {
			fmt.Printf("bootstrapped %s from leader snapshot at %s\n", cfg.dataDir, cfg.leaderURL)
		}
	}
	if cfg.dataDir != "" {
		policy, err := durable.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		dstore, err = usaas.OpenDurableStore(usaas.DurabilityOptions{
			Dir:             cfg.dataDir,
			Fsync:           policy,
			FsyncInterval:   cfg.fsyncInterval,
			GroupCommit:     cfg.groupCommit,
			MaxGroupDelay:   cfg.groupDelay,
			SnapshotEvery:   cfg.snapshotEvery,
			ApplyWorkers:    cfg.applyWorkers,
			DisableColumnar: !cfg.columnar,
			Logf: func(format string, args ...any) {
				fmt.Printf("usaasd: "+format+"\n", args...)
			},
		})
		if err != nil {
			return fmt.Errorf("opening durable store %q: %w", cfg.dataDir, err)
		}
		defer dstore.Close()
		store = dstore.Store
		rs := dstore.Recovery
		snap := "no snapshot"
		if rs.SnapshotFound {
			snap = fmt.Sprintf("snapshot@%d (%d sessions, %d posts)",
				rs.SnapshotSeq, rs.SnapshotSessions, rs.SnapshotPosts)
		}
		torn := ""
		if rs.TornTail {
			torn = fmt.Sprintf(", discarded %dB torn tail", rs.TornBytes)
		}
		fmt.Printf("recovered %s + %d replayed batches in %v%s (fsync=%s)\n",
			snap, rs.ReplayedBatches, rs.Elapsed.Round(time.Millisecond), torn, policy)
	} else {
		store = &usaas.Store{}
		if !cfg.columnar {
			store.DisableColumnar()
		}
		store.StartApplyPipeline(cfg.applyWorkers)
	}
	if cfg.pprofAddr != "" {
		// Opt-in profiling endpoint on its own listener, outside the
		// service's auth/limiter stack: net/http/pprof registers on the
		// default mux at import.
		go func() {
			fmt.Printf("pprof listening on http://%s/debug/pprof/\n", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				fmt.Printf("usaasd: pprof listener: %v\n", err)
			}
		}()
	}
	// Preloads are journaled under a path-derived batch ID, so on a
	// durable restart the already-recovered dataset is not re-applied.
	if sessionsPath != "" {
		n, dup, err := loadSessions(store, sessionsPath, preloadBatchID(cfg.dataDir, sessionsPath))
		if err != nil {
			return fmt.Errorf("loading sessions: %w", err)
		}
		fmt.Printf("loaded %d sessions from %s%s\n", n, sessionsPath, dupNote(dup))
	}
	if postsPath != "" {
		n, dup, err := loadPosts(store, postsPath, preloadBatchID(cfg.dataDir, postsPath))
		if err != nil {
			return fmt.Errorf("loading posts: %w", err)
		}
		fmt.Printf("loaded %d posts from %s%s\n", n, postsPath, dupNote(dup))
	}

	// With a role set, wrap the service in a replication node: the leader
	// serves the WAL frame feed, a follower tails it, redirects writes, and
	// bounds read staleness. The node's readiness feeds /v1/readyz.
	var node *replica.Node
	if cfg.role != "" {
		var err error
		node, err = replica.Open(dstore, replica.Options{
			Role:      replica.Role(cfg.role),
			LeaderURL: cfg.leaderURL,
			MaxLag:    cfg.maxReplicaLag,
			Token:     cfg.token,
			Logf: func(format string, args ...any) {
				fmt.Printf("usaasd: "+format+"\n", args...)
			},
		})
		if err != nil {
			return err
		}
		defer node.Close()
	}

	model := leo.NewModel()
	news := newswire.Build(model.Launches(), leo.MajorOutages(), leo.DefaultMilestones())
	sopts := usaas.ServerOptions{
		Model:           model,
		News:            news,
		AuthToken:       cfg.token,
		RequestTimeout:  cfg.requestTimeout,
		MaxInflight:     cfg.maxInflight,
		ResultCacheSize: cfg.resultCache,
	}
	if cfg.admitRate > 0 {
		sopts.Admission = usaas.AdmissionOptions{Rate: cfg.admitRate, Burst: cfg.admitBurst}
	}
	if node != nil {
		sopts.Ready = node.Ready
	}
	srv := usaas.NewServer(store, sopts)
	var handler http.Handler = srv.Handler()
	if node != nil {
		handler = node.Wrap(handler)
	}

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}

	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("usaasd listening on http://%s\n", cfg.addr)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case s := <-sig:
		fmt.Printf("received %v, draining for up to %v\n", s, cfg.shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			// The drain did not finish inside the bound. Exit nonzero so an
			// operator (or init system) knows requests may have been cut off;
			// the WAL already holds every acknowledged batch.
			return fmt.Errorf("shutdown: drain exceeded %v: %w", cfg.shutdownTimeout, err)
		}
	}
	if node != nil {
		node.Close()
	}
	if dstore != nil {
		// Every request has drained; flush the log and write a final
		// snapshot so the next start recovers without replay.
		if err := dstore.Close(); err != nil {
			return fmt.Errorf("closing durable store: %w", err)
		}
		fmt.Println("durable store flushed and closed")
	}
	return nil
}

// runCoordinator serves the storeless scatter-gather front end: parse the
// shard map, build the coordinator handler, and run the same graceful
// listener the store-backed roles use. Durability flags are refused —
// a coordinator holds no state to make durable.
func runCoordinator(cfg serverConfig, sessionsPath, postsPath string) error {
	if sessionsPath != "" || postsPath != "" {
		return errors.New("-role=coordinator cannot preload datasets; ingest through its HTTP API")
	}
	if cfg.dataDir != "" {
		return errors.New("-role=coordinator is storeless; drop -data-dir")
	}
	if cfg.leaderURL != "" {
		return errors.New("-leader applies to -role=follower, not coordinator")
	}
	if cfg.shards == "" {
		return errors.New("-role=coordinator requires -shards")
	}
	pmap, err := cluster.ParseShards(cfg.shards)
	if err != nil {
		return err
	}
	model := leo.NewModel()
	coord := cluster.New(pmap, cluster.Options{
		Token: cfg.token,
		Model: model,
		News:  newswire.Build(model.Launches(), leo.MajorOutages(), leo.DefaultMilestones()),
	})

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       cfg.readTimeout,
		WriteTimeout:      cfg.writeTimeout,
		IdleTimeout:       cfg.idleTimeout,
	}
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("usaasd coordinator (%d shards) listening on http://%s\n", len(pmap.Shards), cfg.addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
	case s := <-sig:
		fmt.Printf("received %v, draining for up to %v\n", s, cfg.shutdownTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.shutdownTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: drain exceeded %v: %w", cfg.shutdownTimeout, err)
		}
	}
	return nil
}

// preloadBatchID derives the idempotency key for a preload file. It is
// empty (no dedup) when the store is not durable: an in-memory store is
// always empty at startup, so dedup would only mask double flags.
func preloadBatchID(dataDir, path string) string {
	if dataDir == "" {
		return ""
	}
	return "preload:" + filepath.Base(path)
}

func dupNote(dup bool) string {
	if dup {
		return " (already journaled; skipped)"
	}
	return ""
}

// openMaybeGzip opens a dataset file, transparently decompressing ".gz",
// and returns the logical extension (.csv/.jsonl) alongside the reader.
func openMaybeGzip(path string) (io.ReadCloser, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	name := path
	if strings.EqualFold(filepath.Ext(name), ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, "", fmt.Errorf("opening gzip %q: %w", path, err)
		}
		name = strings.TrimSuffix(name, filepath.Ext(name))
		return struct {
			io.Reader
			io.Closer
		}{gz, f}, strings.ToLower(filepath.Ext(name)), nil
	}
	return f, strings.ToLower(filepath.Ext(name)), nil
}

func loadSessions(store *usaas.Store, path, batchID string) (int, bool, error) {
	f, ext, err := openMaybeGzip(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var recs []telemetry.SessionRecord
	appendRec := func(r *telemetry.SessionRecord) error {
		recs = append(recs, *r)
		return nil
	}
	switch ext {
	case ".csv":
		err = telemetry.ReadCSV(f, appendRec)
	case ".jsonl":
		err = telemetry.ReadJSONL(f, appendRec)
	default:
		return 0, false, fmt.Errorf("unsupported extension on %q", path)
	}
	if err != nil {
		return 0, false, err
	}
	_, dup, err := store.AddSessionsBatch(batchID, recs)
	if err != nil {
		return 0, false, err
	}
	return len(recs), dup, nil
}

func loadPosts(store *usaas.Store, path, batchID string) (int, bool, error) {
	f, _, err := openMaybeGzip(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	posts, err := social.CollectPostsJSONL(f)
	if err != nil {
		return 0, false, err
	}
	_, dup, err := store.AddPostsBatch(batchID, posts)
	if err != nil {
		return 0, false, err
	}
	return len(posts), dup, nil
}
