package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true, "table1", 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "table1-corpus.csv"))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, col := range []string{"posts_per_week", "upvotes_per_week", "speedtest_screenshots"} {
		if !strings.Contains(s, col) {
			t.Fatalf("table1 CSV missing %s:\n%s", col, s)
		}
	}
}

// TestRunRepresentativeExperiments exercises one experiment of each shape
// (sweep panel, 2D grid, platform strata, MOS, corpus pipeline, monitor,
// longitudinal) in quick mode, checking each writes its CSV artifacts.
func TestRunRepresentativeExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second dataset generation")
	}
	cases := []struct {
		name  string
		files []string
	}{
		{"fig2", []string{"fig2-compounding.csv"}},
		{"fig3", []string{"fig3-platforms.csv"}},
		{"fig4", []string{"fig4-mos.csv"}},
		{"fig6", []string{"fig6-outage-keywords.csv"}},
		{"roaming", []string{"roaming-trends.csv"}},
		{"confounders", []string{"ext-confounders.csv"}},
		{"incident", []string{"ext-incident-daily.csv"}},
		{"longitudinal", []string{"ext-longitudinal.csv"}},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		if err := run(dir, true, tc.name, 0); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for _, f := range tc.files {
			st, err := os.Stat(filepath.Join(dir, f))
			if err != nil {
				t.Fatalf("%s: missing artifact %s: %v", tc.name, f, err)
			}
			if st.Size() == 0 {
				t.Fatalf("%s: empty artifact %s", tc.name, f)
			}
		}
	}
}

func TestRunUnknownExperimentIsNoop(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, true, "fig99", 0); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("unknown experiment produced files: %v", entries)
	}
}

func TestWriteCSVErrors(t *testing.T) {
	c := &runCtx{outDir: filepath.Join(t.TempDir(), "missing-dir")}
	if err := c.writeCSV("x.csv", []string{"a"}, nil); err == nil {
		t.Fatal("unwritable outdir accepted")
	}
}

func TestSizeScaling(t *testing.T) {
	full := &runCtx{}
	quick := &runCtx{quick: true}
	if full.size(1000) != 1000 || quick.size(1000) != 250 {
		t.Fatal("size scaling wrong")
	}
}
