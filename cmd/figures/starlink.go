package main

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"usersignals/internal/conference"
	"usersignals/internal/newswire"
	"usersignals/internal/nlp"
	"usersignals/internal/social"
	"usersignals/internal/textplot"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

// The social corpus is expensive to score repeatedly; build once per run.
var (
	corpusOnce sync.Once
	corpusVal  *social.Corpus
	corpusCfg  social.Config
	corpusErr  error
	newsIdx    *newswire.Index
	analyzer   = nlp.NewAnalyzer()
)

func studyCorpus(c *runCtx) (*social.Corpus, *newswire.Index, social.Config, error) {
	corpusOnce.Do(func() {
		corpusCfg = social.DefaultConfig(42)
		corpusCfg.Workers = c.workers
		corpusVal, corpusErr = social.Generate(corpusCfg)
		if corpusErr == nil {
			newsIdx = newswire.Build(corpusCfg.Model.Launches(), corpusCfg.Outages, corpusCfg.Milestones)
		}
	})
	return corpusVal, newsIdx, corpusCfg, corpusErr
}

func runTable1(c *runCtx) (string, error) {
	corpus, _, _, err := studyCorpus(c)
	if err != nil {
		return "", err
	}
	posts, upvotes, comments := corpus.WeeklyAverages()
	screenshots := 0
	for i := range corpus.Posts {
		if corpus.Posts[i].Screenshot != nil {
			screenshots++
		}
	}
	rows := [][]string{
		{"posts_per_week", f2s(posts), "372"},
		{"upvotes_per_week", f2s(upvotes), "8190"},
		{"comments_per_week", f2s(comments), "5702"},
		{"speedtest_screenshots", strconv.Itoa(screenshots), "~1750"},
	}
	if err := c.writeCSV("table1-corpus.csv", []string{"statistic", "measured", "paper"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Bars{
		Title:  "Table 1: corpus statistics (measured)",
		Labels: []string{"posts/wk", "upvotes/wk", "comments/wk"},
		Values: []float64{posts, upvotes, comments},
	}.Render())
	return fmt.Sprintf("%.0f posts/wk (372), %.0f upvotes/wk (8190), %.0f comments/wk (5702), %d screenshots (~1750)",
		posts, upvotes, comments, screenshots), nil
}

func runFig5(c *runCtx) (string, error) {
	corpus, news, _, err := studyCorpus(c)
	if err != nil {
		return "", err
	}
	daily := usaas.DailySentiment(corpus, analyzer)
	var rows [][]string
	xs := make([]float64, len(daily))
	ys := make([]float64, len(daily))
	for i, d := range daily {
		xs[i] = float64(d.Day)
		ys[i] = float64(d.Strong())
		rows = append(rows, []string{d.Day.String(), strconv.Itoa(d.Posts),
			strconv.Itoa(d.StrongPos), strconv.Itoa(d.StrongNeg)})
	}
	if err := c.writeCSV("fig5a-sentiment.csv",
		[]string{"day", "posts", "strong_pos", "strong_neg"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Chart{
		Title: "Fig 5a: strong-sentiment posts per day", XLabel: "day index (0 = 2021-01-01)",
		YMinZero: true,
		Series:   []textplot.Series{{Name: "strong", X: xs, Y: ys}},
	}.Render())

	peaks := usaas.AnnotatePeaks(corpus, analyzer, news, 3)
	var peakRows [][]string
	var summaries []string
	for _, pk := range peaks {
		words := make([]string, 0, 3)
		for i, wc := range pk.TopWords {
			if i == 3 {
				break
			}
			words = append(words, wc.Word)
		}
		annotation := "NO NEWS FOUND"
		if len(pk.News) > 0 {
			annotation = pk.News[0].Headline
		}
		polarity := "negative"
		if pk.Positive {
			polarity = "positive"
		}
		peakRows = append(peakRows, []string{pk.Day.String(), strconv.Itoa(pk.Strong), polarity,
			strings.Join(words, " "), annotation})
		summaries = append(summaries, fmt.Sprintf("%s(%s,%d strong)→%q", pk.Day, polarity, pk.Strong, annotation))
		fmt.Printf("peak %s [%s, %d strong] top words: %v\n  news: %s\n",
			pk.Day, polarity, pk.Strong, words, annotation)
	}
	if err := c.writeCSV("fig5-peaks.csv",
		[]string{"day", "strong_posts", "polarity", "top_words", "news"}, peakRows); err != nil {
		return "", err
	}

	// Fig 5b: the word cloud of the April outage day as a bar chart.
	aprDay := timeline.Date(2022, time.April, 22)
	var texts []string
	for _, p := range corpus.OnDay(aprDay) {
		texts = append(texts, p.Text())
	}
	cloud := nlp.WordCloud(texts, 10)
	labels := make([]string, len(cloud))
	values := make([]float64, len(cloud))
	var cloudRows [][]string
	for i, wc := range cloud {
		labels[i], values[i] = wc.Word, float64(wc.Count)
		cloudRows = append(cloudRows, []string{wc.Word, strconv.Itoa(wc.Count)})
	}
	if err := c.writeCSV("fig5b-wordcloud.csv", []string{"word", "count"}, cloudRows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Bars{Title: "Fig 5b: word cloud for 2022-04-22 (top unigrams)",
		Labels: labels, Values: values}.Render())
	return strings.Join(summaries, "; "), nil
}

func runFig6(c *runCtx) (string, error) {
	corpus, _, cfg, err := studyCorpus(c)
	if err != nil {
		return "", err
	}
	dict := nlp.OutageDictionary()
	gated := usaas.OutageKeywordSeries(corpus, analyzer, dict, true)
	ungated := usaas.OutageKeywordSeries(corpus, analyzer, dict, false)
	var rows [][]string
	xs := make([]float64, len(gated))
	ys := make([]float64, len(gated))
	for i := range gated {
		xs[i] = float64(gated[i].Day)
		ys[i] = float64(gated[i].Count)
		rows = append(rows, []string{gated[i].Day.String(),
			strconv.Itoa(gated[i].Count), strconv.Itoa(ungated[i].Count)})
	}
	if err := c.writeCSV("fig6-outage-keywords.csv",
		[]string{"day", "keywords_gated", "keywords_ungated"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Chart{
		Title: "Fig 6: outage keywords/day (negative-sentiment gated)", XLabel: "day index",
		YMinZero: true,
		Series:   []textplot.Series{{Name: "keywords", X: xs, Y: ys}},
	}.Render())

	// Monitor comparison (Downdetector-style baseline).
	outageDays := map[timeline.Day]bool{}
	for _, o := range cfg.Outages {
		outageDays[o.Day] = true
	}
	cmp := usaas.CompareMonitors(gated, outageDays, 3, 150)
	return fmt.Sprintf("keyword monitor: %d/%d outage days; large-incident baseline: %d/%d; false-alarm days: %d",
		cmp.KeywordDetectedDays, cmp.TotalOutageDays,
		cmp.BaselineDetectedDays, cmp.TotalOutageDays, cmp.FalseAlarmDays), nil
}

func runFig7(c *runCtx) (string, error) {
	corpus, _, cfg, err := studyCorpus(c)
	if err != nil {
		return "", err
	}
	months := usaas.MonthlySpeeds(corpus, analyzer, cfg.Model, 7)
	var rows [][]string
	var xs, med, m95, m90, pos []float64
	for i, m := range months {
		rows = append(rows, []string{m.Month.String(), strconv.Itoa(m.Reports),
			f2s(m.MedianDownMbps), f2s(m.Median95), f2s(m.Median90),
			f2s(m.Pos), strconv.Itoa(m.Launches), f2s(m.Users)})
		xs = append(xs, float64(i))
		med = append(med, m.MedianDownMbps)
		m95 = append(m95, m.Median95)
		m90 = append(m90, m.Median90)
		pos = append(pos, m.Pos*100)
	}
	if err := c.writeCSV("fig7-speeds.csv",
		[]string{"month", "reports", "median_down_mbps", "median_95pct_sample",
			"median_90pct_sample", "pos_ratio", "launches", "users"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Chart{
		Title:  "Fig 7: monthly median downlink (OCR) + Pos sentiment (scaled x100)",
		XLabel: "month index (0 = 2021-01)",
		Series: []textplot.Series{
			{Name: "median", X: xs, Y: med},
			{Name: "p95-sample", X: xs, Y: m95},
			{Name: "p90-sample", X: xs, Y: m90},
			{Name: "Pos x100", X: xs, Y: pos},
		},
	}.Render())
	finding := usaas.AnalyzeConditioning(months)
	return fmt.Sprintf("speed-Pos correlation r=%.2f; Dec'21<Apr'21 Pos anomaly=%v; late-'22 Pos recovery=%v",
		finding.SpeedPosCorrelation, finding.DecemberBelowApril, finding.LateRecovery), nil
}

func runRoaming(c *runCtx) (string, error) {
	corpus, _, _, err := studyCorpus(c)
	if err != nil {
		return "", err
	}
	trends := usaas.MineTrends(corpus, analyzer, usaas.TrendOptions{})
	var rows [][]string
	for _, tr := range trends {
		rows = append(rows, []string{tr.Term, tr.FirstDay.String(), f2s(tr.Weight), f2s(tr.PositiveShare)})
	}
	if err := c.writeCSV("roaming-trends.csv",
		[]string{"term", "first_day", "surge_weight", "positive_share"}, rows); err != nil {
		return "", err
	}
	tweetDay := timeline.Date(2022, time.March, 3)
	lead, ok := usaas.LeadTime(trends, "roaming", tweetDay)
	if !ok {
		return "", fmt.Errorf("roaming trend not detected")
	}
	return fmt.Sprintf("'roaming' surfaced %d days before the announcement (paper: ~2 weeks); %d emerging terms total",
		lead, len(trends)), nil
}

func runUSaaS(c *runCtx) (string, error) {
	corpus, news, cfg, err := studyCorpus(c)
	if err != nil {
		return "", err
	}
	opts := conference.Defaults(801, c.size(2000))
	opts.SurveyRate = 0.05
	opts.Workers = c.workers
	g, err := conference.New(opts)
	if err != nil {
		return "", err
	}
	recs, err := g.GenerateAll()
	if err != nil {
		return "", err
	}

	srv := usaas.NewServer(nil, usaas.ServerOptions{News: news, Model: cfg.Model})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := usaas.NewClient(ts.URL, ts.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	if _, err := client.IngestSessions(ctx, recs); err != nil {
		return "", err
	}
	if _, err := client.IngestPosts(ctx, corpus.Posts); err != nil {
		return "", err
	}
	mos, err := client.MOS(ctx)
	if err != nil {
		return "", err
	}
	exp, err := client.Experience(ctx, "starlink")
	if err != nil {
		return "", err
	}
	var rows [][]string
	rows = append(rows, []string{"predictor_mae", f2s(mos.Predictor.PredictorMAE)})
	rows = append(rows, []string{"baseline_mae", f2s(mos.Predictor.BaselineMAE)})
	rows = append(rows, []string{"survey_coverage", f2s(mos.Predictor.SurveyCoverage)})
	rows = append(rows, []string{"predictor_coverage", f2s(mos.Predictor.PredictorCoverage)})
	rows = append(rows, []string{"starlink_sessions", strconv.Itoa(exp.Sessions)})
	rows = append(rows, []string{"starlink_predicted_mos", f2s(exp.PredictedMOS)})
	rows = append(rows, []string{"starlink_social_pos_ratio", f2s(exp.SocialPosRatio)})
	rows = append(rows, []string{"starlink_outage_mentions", strconv.Itoa(exp.OutageMentions)})
	if err := c.writeCSV("usaas-eval.csv", []string{"metric", "value"}, rows); err != nil {
		return "", err
	}
	return fmt.Sprintf("predictor MAE %.3f vs baseline %.3f; coverage %.2f%%→100%%; starlink query: %d sessions, predicted MOS %.2f, social Pos %.2f, %d outage mentions",
		mos.Predictor.PredictorMAE, mos.Predictor.BaselineMAE,
		100*mos.Predictor.SurveyCoverage, exp.Sessions, exp.PredictedMOS,
		exp.SocialPosRatio, exp.OutageMentions), nil
}
