package main

// The §6 extension experiments: confounder quantification, the engagement
// incident monitor vs the survey strawman, and longitudinal conditioning.

import (
	"fmt"
	"strconv"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/telemetry"
	"usersignals/internal/textplot"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

func runConfounders(c *runCtx) (string, error) {
	opts := conference.Defaults(901, c.size(3000))
	g, err := conference.New(opts)
	if err != nil {
		return "", err
	}
	recs, err := g.GenerateAll()
	if err != nil {
		return "", err
	}
	var rows [][]string
	var summary []string
	for _, eng := range telemetry.Engagements() {
		effects, err := usaas.ConfounderReport(recs, eng)
		if err != nil {
			return "", err
		}
		for _, e := range effects {
			for level, v := range e.Levels {
				rows = append(rows, []string{eng.String(), e.Confounder, level, f2s(v)})
			}
			summary = append(summary, fmt.Sprintf("%s/%s spread %.0f%%", eng, e.Confounder, 100*e.Spread))
		}
	}
	if err := c.writeCSV("ext-confounders.csv",
		[]string{"engagement", "confounder", "level", "mean_engagement_pct"}, rows); err != nil {
		return "", err
	}
	return joinStrings(summary, "; "), nil
}

func runIncident(c *runCtx) (string, error) {
	truth := timeline.Range{
		From: timeline.Date(2022, 2, 7),
		To:   timeline.Date(2022, 2, 13),
	}
	opts := conference.Defaults(404, c.size(2600))
	opts.Window = timeline.Range{From: timeline.Date(2022, 1, 10), To: timeline.Date(2022, 3, 10)}
	bad := netsim.ControlBands()
	bad.LatencyMs = [2]float64{220, 320}
	bad.LossPct = [2]float64{2, 4}
	opts.DegradedWindow = truth
	opts.DegradedPaths = &bad
	g, err := conference.New(opts)
	if err != nil {
		return "", err
	}
	recs, err := g.GenerateAll()
	if err != nil {
		return "", err
	}
	days := usaas.DailyEngagement(recs, nil)
	var rows [][]string
	xs := make([]float64, len(days))
	ys := make([]float64, len(days))
	for i, d := range days {
		xs[i] = float64(d.Day)
		ys[i] = d.Presence
		rows = append(rows, []string{d.Day.String(), strconv.Itoa(d.Sessions),
			f2s(d.Presence), strconv.Itoa(d.Ratings)})
	}
	if err := c.writeCSV("ext-incident-daily.csv",
		[]string{"day", "sessions", "mean_presence", "ratings"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Chart{
		Title:  "Extension: daily mean Presence with an injected incident (Feb 7-13)",
		Series: []textplot.Series{{Name: "presence", X: xs, Y: ys}},
	}.Render())
	engIncidents := usaas.EngagementIncidents(days, telemetry.Presence, usaas.IncidentOptions{})
	mosIncidents := usaas.MOSIncidents(days, usaas.IncidentOptions{MinSessions: 1})
	engRecall, engFalse := usaas.IncidentRecall(engIncidents, truth)
	mosRecall, _ := usaas.IncidentRecall(mosIncidents, truth)
	return fmt.Sprintf("engagement monitor recall %.0f%% (%d false days); survey monitor recall %.0f%%",
		100*engRecall, engFalse, 100*mosRecall), nil
}

func runLongitudinal(c *runCtx) (string, error) {
	good := netsim.AccessProfile{Name: "good", LatencyMedianMs: 20, LatencySpread: 1.2,
		JitterMedianMs: 1.5, JitterSpread: 1.3, CapacityMedianMbps: 3.5, CapacitySpread: 1.1}
	awful := netsim.AccessProfile{Name: "awful", LatencyMedianMs: 260, LatencySpread: 1.15,
		JitterMedianMs: 4, JitterSpread: 1.3, CapacityMedianMbps: 3.5, CapacitySpread: 1.1,
		LossyProb: 1, LossScalePct: 1.2}
	opts := conference.Defaults(606, c.size(2500))
	opts.Paths = &netsim.Mixture{Profiles: []netsim.AccessProfile{good, awful}, Weights: []float64{0.5, 0.5}}
	opts.UserPool = 600
	opts.UserConditioningAlpha = 0.8
	opts.ConditioningWeight = 0.9
	g, err := conference.New(opts)
	if err != nil {
		return "", err
	}
	recs, err := g.GenerateAll()
	if err != nil {
		return "", err
	}
	lc := usaas.AnalyzeLongitudinalConditioning(recs)
	rows := [][]string{
		{"bad_after_bad", f2s(lc.PresenceBadAfterBad), strconv.Itoa(lc.NBadAfterBad)},
		{"bad_after_good", f2s(lc.PresenceBadAfterGood), strconv.Itoa(lc.NBadAfterGood)},
	}
	if err := c.writeCSV("ext-longitudinal.csv",
		[]string{"history", "mean_presence", "sessions"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Bars{
		Title:  "Extension: presence in bad sessions by user history",
		Labels: []string{"after bad session", "after good session"},
		Values: []float64{lc.PresenceBadAfterBad, lc.PresenceBadAfterGood},
	}.Render())
	return fmt.Sprintf("conditioning effect +%.1f presence points (bad-after-bad %.1f vs bad-after-good %.1f)",
		lc.Effect(), lc.PresenceBadAfterBad, lc.PresenceBadAfterGood), nil
}

func joinStrings(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}
