package main

import (
	"fmt"
	"strconv"
	"strings"

	"usersignals/internal/conference"
	"usersignals/internal/netsim"
	"usersignals/internal/stats"
	"usersignals/internal/telemetry"
	"usersignals/internal/textplot"
	"usersignals/internal/usaas"
)

// sweepRecords generates a dataset sweeping one metric over its Fig. 1
// range while the rest stay in the control bands.
func sweepRecords(c *runCtx, seed uint64, calls int, configure func(*netsim.Sweep)) ([]telemetry.SessionRecord, error) {
	sw := netsim.ControlBands()
	configure(&sw)
	opts := conference.Defaults(seed, c.size(calls))
	opts.Paths = &sw
	opts.SurveyRate = 0.05
	opts.Workers = c.workers
	g, err := conference.New(opts)
	if err != nil {
		return nil, err
	}
	return g.GenerateAll()
}

// fig1Panel computes the three engagement curves for one swept metric.
func fig1Panel(c *runCtx, name string, seed uint64, metric telemetry.Metric, lo, hi float64, configure func(*netsim.Sweep)) (string, error) {
	recs, err := sweepRecords(c, seed, 2000, configure)
	if err != nil {
		return "", err
	}
	b := stats.NewBinner(lo, hi, 10)
	var plotSeries []textplot.Series
	var rows [][]string
	var drops []string
	for _, eng := range telemetry.Engagements() {
		s, err := usaas.DoseResponse(recs, metric, eng, b, telemetry.StudyCohort())
		if err != nil {
			return "", err
		}
		norm := usaas.Normalize100(s).NonEmpty()
		plotSeries = append(plotSeries, textplot.Series{Name: eng.String(), X: norm.X, Y: norm.Y})
		for i := range norm.X {
			rows = append(rows, []string{eng.String(), f2s(norm.X[i]), f2s(norm.Y[i]), strconv.Itoa(norm.Count[i])})
		}
		drops = append(drops, fmt.Sprintf("%s drop %.0f%%", eng, 100*usaas.RelativeDrop(s)))
	}
	if err := c.writeCSV("fig1-"+name+".csv", []string{"engagement", metric.String(), "normalized", "sessions"}, rows); err != nil {
		return "", err
	}
	chart := textplot.Chart{
		Title:  fmt.Sprintf("Fig 1 (%s): normalized engagement vs %s", name, metric),
		XLabel: metric.String(),
		Series: plotSeries,
	}
	fmt.Print(chart.Render())
	return strings.Join(drops, ", "), nil
}

func runFig1(c *runCtx) (string, error) {
	var parts []string
	lat, err := fig1Panel(c, "latency", 101, telemetry.LatencyMean, 0, 300,
		func(s *netsim.Sweep) { s.LatencyMs = [2]float64{0, 300} })
	if err != nil {
		return "", err
	}
	parts = append(parts, "latency["+lat+"]")
	loss, err := fig1Panel(c, "loss", 102, telemetry.LossMean, 0, 4,
		func(s *netsim.Sweep) { s.LossPct = [2]float64{0, 4} })
	if err != nil {
		return "", err
	}
	parts = append(parts, "loss["+loss+"]")
	jit, err := fig1Panel(c, "jitter", 103, telemetry.JitterMean, 0, 12,
		func(s *netsim.Sweep) { s.JitterMs = [2]float64{0, 12} })
	if err != nil {
		return "", err
	}
	parts = append(parts, "jitter["+jit+"]")
	bw, err := fig1Panel(c, "bandwidth", 104, telemetry.BandwidthMean, 0.25, 4,
		func(s *netsim.Sweep) { s.BandwidthMbps = [2]float64{0.25, 4} })
	if err != nil {
		return "", err
	}
	parts = append(parts, "bandwidth["+bw+"]")
	return strings.Join(parts, "  "), nil
}

func runFig2(c *runCtx) (string, error) {
	recs, err := sweepRecords(c, 201, 3000, func(s *netsim.Sweep) {
		s.LatencyMs = [2]float64{0, 300}
		s.LossPct = [2]float64{0, 3.5}
	})
	if err != nil {
		return "", err
	}
	xb := stats.NewBinner(0, 300, 5)
	yb := stats.NewBinner(0, 3.5, 5)
	grid, err := usaas.Compounding(recs, telemetry.LatencyMean, telemetry.LossMean, telemetry.Presence, xb, yb, telemetry.StudyCohort())
	if err != nil {
		return "", err
	}
	// Render: rows = loss bins (top = high loss), cols = latency bins.
	values := make([][]float64, yb.NBins)
	yLabels := make([]string, yb.NBins)
	for yi := 0; yi < yb.NBins; yi++ {
		row := make([]float64, xb.NBins)
		for xi := 0; xi < xb.NBins; xi++ {
			row[xi] = grid.Mean[xi][yb.NBins-1-yi]
		}
		values[yi] = row
		yLabels[yi] = fmt.Sprintf("loss %.1f%%", yb.Center(yb.NBins-1-yi))
	}
	xLabels := make([]string, xb.NBins)
	var rows [][]string
	for xi := 0; xi < xb.NBins; xi++ {
		xLabels[xi] = fmt.Sprintf("%.0f", xb.Center(xi))
		for yi := 0; yi < yb.NBins; yi++ {
			rows = append(rows, []string{
				f2s(xb.Center(xi)), f2s(yb.Center(yi)),
				f2s(grid.Mean[xi][yi]), strconv.Itoa(grid.Count[xi][yi]),
			})
		}
	}
	if err := c.writeCSV("fig2-compounding.csv",
		[]string{"latency_ms", "loss_pct", "mean_presence", "sessions"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Heatmap{
		Title:   "Fig 2: mean Presence over latency x loss (dark = high presence)",
		XLabels: xLabels, YLabels: yLabels, Values: values,
	}.Render())
	best, worst, _ := grid.BestWorst()
	return fmt.Sprintf("presence best %.1f, worst %.1f (dip %.0f%%; paper ~50%%)",
		best, worst, 100*(best-worst)/best), nil
}

func runFig3(c *runCtx) (string, error) {
	recs, err := sweepRecords(c, 301, 3000, func(s *netsim.Sweep) {
		s.LossPct = [2]float64{0, 4}
	})
	if err != nil {
		return "", err
	}
	b := stats.NewBinner(0, 4, 6)
	series, err := usaas.ByPlatform(recs, telemetry.LossMean, telemetry.Presence, b, telemetry.StudyCohort())
	if err != nil {
		return "", err
	}
	var plot []textplot.Series
	var rows [][]string
	var summary []string
	for _, platform := range []string{"windows-pc", "mac-pc", "ios-mobile", "android-mobile"} {
		s, ok := series[platform]
		if !ok {
			continue
		}
		ne := s.NonEmpty()
		plot = append(plot, textplot.Series{Name: platform, X: ne.X, Y: ne.Y})
		for i := range ne.X {
			rows = append(rows, []string{platform, f2s(ne.X[i]), f2s(ne.Y[i]), strconv.Itoa(ne.Count[i])})
		}
		if len(ne.Y) > 0 {
			summary = append(summary, fmt.Sprintf("%s@high-loss=%.0f", platform, ne.Y[len(ne.Y)-1]))
		}
	}
	if err := c.writeCSV("fig3-platforms.csv",
		[]string{"platform", "loss_pct", "mean_presence", "sessions"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Chart{
		Title: "Fig 3: Presence vs loss rate per platform", XLabel: "loss %", Series: plot,
	}.Render())
	return strings.Join(summary, ", "), nil
}

func runFig4(c *runCtx) (string, error) {
	opts := conference.Defaults(401, c.size(4000))
	opts.SurveyRate = 0.05
	opts.Workers = c.workers
	g, err := conference.New(opts)
	if err != nil {
		return "", err
	}
	recs, err := g.GenerateAll()
	if err != nil {
		return "", err
	}
	report, err := usaas.MOSReport(recs, 8, nil)
	if err != nil {
		return "", err
	}
	var plot []textplot.Series
	var rows [][]string
	var summary []string
	for _, em := range report {
		ne := em.Series.NonEmpty()
		plot = append(plot, textplot.Series{Name: em.Engagement.String(), X: ne.X, Y: ne.Y})
		for i := range ne.X {
			rows = append(rows, []string{em.Engagement.String(), f2s(ne.X[i]), f2s(ne.Y[i]), strconv.Itoa(ne.Count[i])})
		}
		summary = append(summary, fmt.Sprintf("%s r=%.2f rho=%.2f", em.Engagement, em.Pearson, em.Spearman))
	}
	if err := c.writeCSV("fig4-mos.csv",
		[]string{"engagement", "engagement_pct", "mean_mos", "sessions"}, rows); err != nil {
		return "", err
	}
	fmt.Print(textplot.Chart{
		Title: "Fig 4: MOS vs engagement (rated sessions)", XLabel: "engagement %", Series: plot,
	}.Render())
	return fmt.Sprintf("%s (rated %d of %d sessions)",
		strings.Join(summary, ", "), report[0].RatedSessions, len(recs)), nil
}
