// Command figures regenerates every figure and table of the paper's
// evaluation from freshly generated synthetic data, printing an ASCII
// rendition of each and writing the underlying series as CSV files.
//
// Usage:
//
//	figures -outdir out            # full run
//	figures -outdir out -quick     # smaller datasets, same shapes
//	figures -only fig7             # one experiment
//
// Experiments: fig1, fig2, fig3, fig4, table1, fig5, fig6, fig7, roaming,
// usaas (Fig. 8's service, evaluated end to end).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

type runCtx struct {
	outDir string
	quick  bool
	// workers shards generation and analysis across goroutines; <= 0
	// means one per CPU. Figures are identical at any worker count.
	workers int
}

// experiment is one reproducible unit. Each returns a short summary line
// recorded in the run manifest.
type experiment struct {
	name string
	desc string
	run  func(*runCtx) (string, error)
}

func experiments() []experiment {
	return []experiment{
		{"fig1", "engagement vs latency / loss / jitter / bandwidth", runFig1},
		{"fig2", "latency x loss compounding on Presence", runFig2},
		{"fig3", "Presence vs loss per platform", runFig3},
		{"fig4", "engagement vs MOS", runFig4},
		{"table1", "corpus statistics (posts/upvotes/comments per week)", runTable1},
		{"fig5", "sentiment peaks with word clouds and news annotation", runFig5},
		{"fig6", "outage-keyword series with sentiment gate", runFig6},
		{"fig7", "monthly speed medians, subsampling, Pos sentiment", runFig7},
		{"roaming", "early-trend detection lead time", runRoaming},
		{"usaas", "service end-to-end + MOS predictor evaluation", runUSaaS},
		{"confounders", "platform/meeting-size effects at controlled network (§6)", runConfounders},
		{"incident", "engagement incident monitor vs survey strawman (§6 extension)", runIncident},
		{"longitudinal", "long-term conditioning over a persistent user pool (§6)", runLongitudinal},
	}
}

func main() {
	var (
		outDir  = flag.String("outdir", "figures-out", "directory for CSV outputs")
		quick   = flag.Bool("quick", false, "smaller datasets (~4x faster), same qualitative shapes")
		only    = flag.String("only", "", "run a single experiment by name")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines to shard generation and analysis across (figures are identical at any count)")
	)
	flag.Parse()
	if err := run(*outDir, *quick, *only, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(outDir string, quick bool, only string, workers int) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	ctx := &runCtx{outDir: outDir, quick: quick, workers: workers}
	var manifest []string
	for _, exp := range experiments() {
		if only != "" && exp.name != only {
			continue
		}
		fmt.Printf("=== %s: %s ===\n", exp.name, exp.desc)
		summary, err := exp.run(ctx)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.name, err)
		}
		fmt.Println(summary)
		fmt.Println()
		manifest = append(manifest, exp.name+": "+summary)
	}
	if only == "" {
		if err := os.WriteFile(filepath.Join(outDir, "SUMMARY.txt"),
			[]byte(strings.Join(manifest, "\n")+"\n"), 0o644); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV writes a rectangular table.
func (c *runCtx) writeCSV(name string, header []string, rows [][]string) error {
	f, err := os.Create(filepath.Join(c.outDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	for _, row := range rows {
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func f2s(v float64) string { return fmt.Sprintf("%.4g", v) }

// size scales dataset sizes for quick mode.
func (c *runCtx) size(full int) int {
	if c.quick {
		return full / 4
	}
	return full
}
