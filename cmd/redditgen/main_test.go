package main

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"usersignals/internal/social"
)

func TestRunWritesCorpus(t *testing.T) {
	out := filepath.Join(t.TempDir(), "posts.jsonl")
	if err := run(1, out, false, 0, true); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	n := 0
	screenshots := 0
	for sc.Scan() {
		var p social.Post
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if p.Screenshot != nil {
			screenshots++
		}
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n < 30000 {
		t.Fatalf("only %d posts", n)
	}
	if screenshots < 1000 {
		t.Fatalf("only %d screenshots survived serialization", screenshots)
	}
}

func TestRunAblationFlag(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	if err := run(3, a, false, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := run(3, b, true, 0, true); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) == string(db) {
		t.Fatal("conditioning ablation changed nothing")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(1, filepath.Join(t.TempDir(), "no", "dir.jsonl"), false, 0, true); err == nil {
		t.Fatal("unwritable path accepted")
	}
}
