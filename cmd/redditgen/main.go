// Command redditgen generates the two-year social corpus — the r/Starlink
// stand-in of §4 — as JSON Lines, one post per line (screenshots inline).
//
// Usage:
//
//	redditgen -seed 1 -out posts.jsonl
//	redditgen -seed 1 -no-conditioning -out posts-ablation.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"usersignals/internal/social"
)

func main() {
	var (
		seed           = flag.Uint64("seed", 1, "generation seed")
		out            = flag.String("out", "posts.jsonl", "output path (.jsonl)")
		noConditioning = flag.Bool("no-conditioning", false, "disable the expectation-conditioning term (§4.2 ablation)")
		workers        = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines to shard timeline days across (output is identical at any count)")
		quiet          = flag.Bool("q", false, "suppress summary output")
	)
	flag.Parse()
	if err := run(*seed, *out, *noConditioning, *workers, *quiet); err != nil {
		fmt.Fprintln(os.Stderr, "redditgen:", err)
		os.Exit(1)
	}
}

func run(seed uint64, out string, noConditioning bool, workers int, quiet bool) error {
	cfg := social.DefaultConfig(seed)
	cfg.ConditioningOff = noConditioning
	cfg.Workers = workers
	corpus, err := social.Generate(cfg)
	if err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := social.WritePostsJSONL(f, corpus.Posts); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	if !quiet {
		posts, upvotes, comments := corpus.WeeklyAverages()
		fmt.Printf("wrote %d posts to %s (seed %d)\n", corpus.Len(), out, seed)
		fmt.Printf("weekly averages: %.0f posts, %.0f upvotes, %.0f comments (paper: 372 / 8190 / 5702)\n",
			posts, upvotes, comments)
	}
	return nil
}
