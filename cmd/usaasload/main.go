// Command usaasload is a closed-loop load harness for the usaas ingest
// pipeline. N concurrent clients each drive a loop of seeded diurnal
// NDJSON session batches, social-post batches, and query traffic against
// a server, measuring acked-ingest latency percentiles (p50/p99/p999)
// and the maximum sustainable batch rate at that concurrency (a closed
// loop issues the next batch the moment the previous one is acked, so
// achieved throughput IS the sustainable ceiling for that client count).
//
// By default the harness embeds the server in-process on a loopback
// listener with a throwaway durable data directory, so a single binary
// measures the full HTTP + journaling path:
//
//	usaasload -clients 16 -duration 5s
//
// -compare runs three embedded passes over the same workload — fsync
// per batch without group commit, fsync per batch with the group-commit
// scheduler, and interval fsync — and reports the acked-throughput
// ratios. The pipeline's acceptance target is group-commit batch ingest
// within ~1.5x of interval at >=16 clients. -out writes the full report
// as JSON (see BENCH_load.json at the repo root).
//
// After every pass the harness cross-checks its own client-side counts
// against the server's /v1/stats ingest gauges: commit batches must
// equal acked batches, the group-size histogram must sum to the group
// count, the commit queue must have drained, and (when -admit-rate is
// set) per-tenant admission counters must cover every acked batch. A
// mismatch fails the run — the gauges are part of the contract, not
// decoration.
//
// Against an already-running server use -target (the embedded fsync
// knobs then do not apply, and store-total assertions are skipped since
// the store may not start empty):
//
//	usaasload -target http://127.0.0.1:8080 -clients 32 -duration 30s
//
// -target also accepts a comma-separated endpoint list (a replicated
// pair, or several shard fronts); clients are spread round-robin across
// the list, each keeping the full list for failover. When the target is
// a scatter-gather coordinator (usaasd -role=coordinator), the harness
// additionally cross-checks the coordinator's fleet gauges from
// /v1/stats: every shard up, per-shard fan-outs covering the acked
// ingest requests, and — on fault-free embedded runs — zero shard
// errors and degraded sections.
//
// -cluster "1,2,4" embeds one coordinator-fronted cluster per shard
// count and measures ingest throughput plus cold/warm /v1/report
// latency at each size; -out then writes the cluster report (see
// BENCH_cluster.json at the repo root):
//
//	usaasload -cluster 1,2,4 -clients 16 -duration 5s -out BENCH_cluster.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"usersignals/internal/cluster"
	"usersignals/internal/conference"
	"usersignals/internal/durable"
	"usersignals/internal/leo"
	"usersignals/internal/newswire"
	"usersignals/internal/social"
	"usersignals/internal/telemetry"
	"usersignals/internal/timeline"
	"usersignals/internal/usaas"
)

type config struct {
	target       string
	clients      int
	duration     time.Duration
	batch        int
	users        int
	seed         uint64
	tenants      int
	queryEvery   int
	postsEvery   int
	fsync        string
	group        bool
	groupDelay   time.Duration
	applyWorkers int
	compare      bool
	admitRate    float64
	admitBurst   float64
	out          string
	cpuProfile   string
	baseline     string
	tailFactor   float64
	cluster      string
}

// passConfig names one embedded server configuration under test.
type passConfig struct {
	name  string
	fsync durable.FsyncPolicy
	group bool
}

// passResult is what one pass measured, as serialized into -out.
type passResult struct {
	Name          string  `json:"name"`
	Fsync         string  `json:"fsync"`
	GroupCommit   bool    `json:"group_commit"`
	Clients       int     `json:"clients"`
	DurationS     float64 `json:"duration_s"`
	AckedBatches  int     `json:"acked_batches"`
	AckedSessions int     `json:"acked_sessions"`
	AckedPosts    int     `json:"acked_posts"`
	Duplicates    int     `json:"duplicates,omitempty"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	IngestP50Ms   float64 `json:"ingest_p50_ms"`
	IngestP99Ms   float64 `json:"ingest_p99_ms"`
	IngestP999Ms  float64 `json:"ingest_p999_ms"`
	IngestMaxMs   float64 `json:"ingest_max_ms"`
	Queries       int     `json:"queries"`
	QueryP99Ms    float64 `json:"query_p99_ms,omitempty"`
	Throttled     uint64  `json:"throttled,omitempty"`
	CommitGroups  uint64  `json:"commit_groups,omitempty"`
	MeanGroup     float64 `json:"mean_commit_group,omitempty"`
	Fsyncs        uint64  `json:"fsyncs,omitempty"`
	FsyncMeanMs   float64 `json:"fsync_mean_ms,omitempty"`
}

// loadReport is the top-level -out document.
type loadReport struct {
	Generated            string       `json:"generated"`
	Clients              int          `json:"clients"`
	BatchRecords         int          `json:"batch_records"`
	Seed                 uint64       `json:"seed"`
	ApplyWorkers         int          `json:"apply_workers,omitempty"`
	Passes               []passResult `json:"passes"`
	GroupOverInterval    float64      `json:"batch_group_over_interval,omitempty"`
	NoGroupOverInterval  float64      `json:"batch_nogroup_over_interval,omitempty"`
	GroupCommitSpeedup   float64      `json:"group_commit_speedup,omitempty"`
	GroupWithinIntervalX float64      `json:"target_ratio,omitempty"`
}

func main() {
	var cfg config
	flag.StringVar(&cfg.target, "target", "", "base URL of a running server, or a comma-separated endpoint list to spread clients across; empty = embed the server in-process")
	flag.IntVar(&cfg.clients, "clients", 16, "concurrent closed-loop clients")
	flag.DurationVar(&cfg.duration, "duration", 5*time.Second, "measurement window per pass")
	flag.IntVar(&cfg.batch, "batch", 20, "session records per ingest batch")
	flag.IntVar(&cfg.users, "users", 400, "conference-generator users behind the seeded diurnal dataset")
	flag.Uint64Var(&cfg.seed, "seed", 42, "dataset seed")
	flag.IntVar(&cfg.tenants, "tenants", 4, "distinct tenant labels spread across clients")
	flag.IntVar(&cfg.queryEvery, "query-every", 8, "every Nth client op is a /v1/stats query; 0 disables")
	flag.IntVar(&cfg.postsEvery, "posts-every", 10, "every Nth client op is a social-posts batch; 0 disables")
	flag.StringVar(&cfg.fsync, "fsync", "batch", "embedded server fsync policy (batch, interval, off)")
	flag.BoolVar(&cfg.group, "group-commit", true, "embedded server group-commit scheduler (fsync=batch only)")
	flag.DurationVar(&cfg.groupDelay, "group-delay", time.Millisecond, "embedded group-commit linger: how long a sealed group may wait for more batches before its fsync (0 = sync as soon as the scheduler is free)")
	flag.BoolVar(&cfg.compare, "compare", false, "run batch, batch+group, and interval passes and report ratios (embedded only)")
	flag.Float64Var(&cfg.admitRate, "admit-rate", 0, "per-tenant admission rate (batches/sec); 0 disables")
	flag.Float64Var(&cfg.admitBurst, "admit-burst", 0, "per-tenant admission burst (defaults to rate)")
	flag.IntVar(&cfg.applyWorkers, "apply-workers", 0, "embedded server apply-pipeline workers (0 = apply inline under the sequencing lock)")
	flag.StringVar(&cfg.baseline, "baseline", "", "committed BENCH_load.json to regress against: fails when the measured batch+group/interval throughput ratio drops more than 20% below the baseline's (ratios are machine-tolerant where absolute rates are not); -compare only")
	flag.Float64Var(&cfg.tailFactor, "assert-tail-factor", 0, "fail when the batch+group pass's p999 ingest latency exceeds this multiple of the plain batch pass's p999 (0 disables; -compare only) — the group-commit tail regression gate")
	flag.StringVar(&cfg.cluster, "cluster", "", "comma-separated shard counts (e.g. \"1,2,4\"): embed one coordinator-fronted cluster per count and measure ingest throughput plus cold/warm report latency; -out then writes the cluster report")
	flag.StringVar(&cfg.out, "out", "", "write the JSON report here (stdout always gets a summary)")
	flag.StringVar(&cfg.cpuProfile, "cpuprofile", "", "write a CPU profile covering the measurement passes (clients and embedded server share the process, so the profile attributes the whole closed loop)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "usaasload:", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.compare && cfg.target != "" {
		return errors.New("-compare needs the embedded server: it controls the fsync policy per pass")
	}
	if cfg.cluster != "" && (cfg.target != "" || cfg.compare) {
		return errors.New("-cluster embeds its own shard fleet; drop -target/-compare")
	}
	if cfg.clients < 1 || cfg.batch < 1 {
		return errors.New("-clients and -batch must be >= 1")
	}
	w, err := buildWorkload(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d session batches x %d records, %d post batches, %d clients, %v per pass\n",
		len(w.sessionWires), cfg.batch, len(w.postBatches), cfg.clients, cfg.duration)

	if cfg.cluster != "" {
		return runClusterBench(cfg, w)
	}

	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	var passes []passConfig
	switch {
	case cfg.target != "":
		passes = []passConfig{{name: "external"}}
	case cfg.compare:
		passes = []passConfig{
			{name: "batch", fsync: durable.FsyncPerBatch, group: false},
			{name: "batch+group", fsync: durable.FsyncPerBatch, group: true},
			{name: "interval", fsync: durable.FsyncInterval, group: false},
		}
	default:
		policy, err := durable.ParseFsyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		passes = []passConfig{{name: cfg.fsync, fsync: policy, group: cfg.group}}
	}

	rep := loadReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Clients:      cfg.clients,
		BatchRecords: cfg.batch,
		Seed:         cfg.seed,
		ApplyWorkers: cfg.applyWorkers,
	}
	for _, pc := range passes {
		res, err := runPass(cfg, pc, w)
		if err != nil {
			return fmt.Errorf("pass %s: %w", pc.name, err)
		}
		rep.Passes = append(rep.Passes, res)
		fmt.Printf("pass %-12s %8.1f batches/sec  p50 %6.2fms  p99 %7.2fms  p999 %7.2fms  (%d batches",
			res.Name, res.BatchesPerSec, res.IngestP50Ms, res.IngestP99Ms, res.IngestP999Ms, res.AckedBatches)
		if res.MeanGroup > 0 {
			fmt.Printf(", %.1f batches/group", res.MeanGroup)
		}
		if res.Throttled > 0 {
			fmt.Printf(", %d throttled", res.Throttled)
		}
		fmt.Println(")")
	}

	if cfg.compare {
		byName := map[string]passResult{}
		for _, p := range rep.Passes {
			byName[p.Name] = p
		}
		iv, g, ng := byName["interval"], byName["batch+group"], byName["batch"]
		if iv.BatchesPerSec > 0 {
			rep.GroupOverInterval = round2(iv.BatchesPerSec / g.BatchesPerSec)
			rep.NoGroupOverInterval = round2(iv.BatchesPerSec / ng.BatchesPerSec)
			rep.GroupWithinIntervalX = 1.5
		}
		if ng.BatchesPerSec > 0 {
			rep.GroupCommitSpeedup = round2(g.BatchesPerSec / ng.BatchesPerSec)
		}
		fmt.Printf("acked throughput vs interval: batch+group %.2fx slower, plain batch %.2fx slower (group commit: %.2fx speedup)\n",
			rep.GroupOverInterval, rep.NoGroupOverInterval, rep.GroupCommitSpeedup)

		// Tail-regression gate: group commit buys throughput by batching
		// fsyncs, and the price must stay bounded — a lingering group (or a
		// rotation fsync serialized under the WAL lock) shows up here as a
		// p999 far beyond the plain-batch pass's.
		if cfg.tailFactor > 0 && g.IngestP999Ms > cfg.tailFactor*ng.IngestP999Ms {
			return fmt.Errorf("tail regression: batch+group p999 %.2fms > %.1fx plain batch p999 %.2fms",
				g.IngestP999Ms, cfg.tailFactor, ng.IngestP999Ms)
		}

		// Throughput-regression gate against the committed baseline. CI
		// machines are slower and noisier than the box the baseline was
		// recorded on, so the gate compares the batch+group/interval RATIO —
		// both passes move with the machine, the ratio only moves when the
		// pipeline does.
		if cfg.baseline != "" {
			if err := checkBaseline(cfg.baseline, rep); err != nil {
				return err
			}
		}
	}

	if cfg.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", cfg.out)
	}
	return nil
}

// checkBaseline fails the run when the measured batch+group throughput,
// relative to the interval pass, has dropped more than 20% below the same
// ratio in the committed baseline report.
func checkBaseline(path string, rep loadReport) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base loadReport
	if err := json.Unmarshal(buf, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	// The reports store interval/group (slowdown); invert to group/interval
	// so "bigger is better" and the 0.8 floor reads naturally.
	if base.GroupOverInterval <= 0 || rep.GroupOverInterval <= 0 {
		return fmt.Errorf("baseline gate needs batch_group_over_interval in both reports (baseline %v, measured %v)",
			base.GroupOverInterval, rep.GroupOverInterval)
	}
	baseRatio := 1 / base.GroupOverInterval
	gotRatio := 1 / rep.GroupOverInterval
	if gotRatio < 0.8*baseRatio {
		return fmt.Errorf("throughput regression: batch+group achieves %.2fx of interval, baseline %s has %.2fx (floor 80%%)",
			gotRatio, path, baseRatio)
	}
	fmt.Printf("baseline gate: batch+group/interval ratio %.2f vs baseline %.2f (>= 80%%: ok)\n", gotRatio, baseRatio)
	return nil
}

// workload is the pre-encoded batch corpus every pass replays. Encoding
// happens once, up front, so client loops spend their time on the wire
// and in the server, not in the generator.
type workload struct {
	sessionWires [][]byte // NDJSON bodies, cfg.batch records each
	postBatches  [][]social.Post
}

func buildWorkload(cfg config) (*workload, error) {
	g, err := conference.New(conference.Defaults(cfg.seed, cfg.users))
	if err != nil {
		return nil, err
	}
	recs, err := g.GenerateAll()
	if err != nil {
		return nil, err
	}
	if len(recs) < cfg.batch {
		return nil, fmt.Errorf("dataset too small: %d sessions < one batch of %d", len(recs), cfg.batch)
	}
	var w workload
	for i := 0; i+cfg.batch <= len(recs); i += cfg.batch {
		wire, err := telemetry.AppendNDJSON(nil, recs[i:i+cfg.batch])
		if err != nil {
			return nil, err
		}
		w.sessionWires = append(w.sessionWires, wire)
	}

	scfg := social.DefaultConfig(cfg.seed)
	scfg.Window = timeline.Range{From: timeline.Date(2022, 1, 1), To: timeline.Date(2022, 2, 28)}
	scfg.Outages = leo.AllOutages(cfg.seed, scfg.Window, 1.5)
	corpus, err := social.Generate(scfg)
	if err != nil {
		return nil, err
	}
	posts := corpus.Posts
	for i := 0; i+cfg.batch <= len(posts) && len(w.postBatches) < 64; i += cfg.batch {
		w.postBatches = append(w.postBatches, posts[i:i+cfg.batch])
	}
	if len(w.postBatches) == 0 {
		w.postBatches = [][]social.Post{posts}
	}
	return &w, nil
}

// workerStats accumulates one client's measurements; merged after join.
type workerStats struct {
	ingestLat  []time.Duration
	queryLat   []time.Duration
	batches    int
	dups       int
	sessions   int
	posts      int
	numQueries int
}

func runPass(cfg config, pc passConfig, w *workload) (passResult, error) {
	target := cfg.target
	if target == "" {
		var stop func()
		var err error
		target, stop, err = startEmbedded(cfg, pc)
		if err != nil {
			return passResult{}, err
		}
		defer stop()
	}
	return measure(cfg, pc, w, target, cfg.target == "")
}

// measure drives one closed-loop pass against target — a single base URL
// or a comma-separated endpoint list. With a list, client c starts at
// endpoint c mod len (spreading the fleet) while keeping the whole list
// for failover. embedded marks a fresh in-process store, enabling the
// exact store-total assertions.
func measure(cfg config, pc passConfig, w *workload, target string, embedded bool) (passResult, error) {
	endpoints := strings.Split(target, ",")
	for i := range endpoints {
		endpoints[i] = strings.TrimSpace(endpoints[i])
	}

	// Unique-per-run batch ID prefix: against an external server, a rerun
	// must not dedup against a previous run's batches.
	prefix := fmt.Sprintf("load-%s-%d", pc.name, time.Now().UnixNano())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	deadline := time.Now().Add(cfg.duration)
	stats := make([]workerStats, cfg.clients)
	errCh := make(chan error, cfg.clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if err := worker(ctx, cfg, w, rotate(endpoints, c), prefix, c, deadline, &stats[c]); err != nil {
				errCh <- err
				cancel()
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return passResult{}, err
	default:
	}

	var tot workerStats
	var ingest, query []time.Duration
	for i := range stats {
		s := &stats[i]
		tot.batches += s.batches
		tot.dups += s.dups
		tot.sessions += s.sessions
		tot.posts += s.posts
		tot.numQueries += s.numQueries
		ingest = append(ingest, s.ingestLat...)
		query = append(query, s.queryLat...)
	}
	if tot.batches == 0 {
		return passResult{}, errors.New("no batch acked inside the measurement window")
	}
	sort.Slice(ingest, func(i, j int) bool { return ingest[i] < ingest[j] })
	sort.Slice(query, func(i, j int) bool { return query[i] < query[j] })

	res := passResult{
		Name:          pc.name,
		GroupCommit:   pc.group,
		Clients:       cfg.clients,
		DurationS:     round2(elapsed.Seconds()),
		AckedBatches:  tot.batches,
		AckedSessions: tot.sessions,
		AckedPosts:    tot.posts,
		Duplicates:    tot.dups,
		BatchesPerSec: round2(float64(tot.batches) / elapsed.Seconds()),
		IngestP50Ms:   ms(percentile(ingest, 0.50)),
		IngestP99Ms:   ms(percentile(ingest, 0.99)),
		IngestP999Ms:  ms(percentile(ingest, 0.999)),
		IngestMaxMs:   ms(ingest[len(ingest)-1]),
		Queries:       tot.numQueries,
	}
	if embedded {
		res.Fsync = pc.fsync.String()
	} else {
		res.Fsync = "external"
	}
	if len(query) > 0 {
		res.QueryP99Ms = ms(percentile(query, 0.99))
	}

	// Cross-check the server's pipeline gauges against what this side
	// acked. Store totals only hold when the server started empty.
	probe := usaas.NewClientWithOptions(endpoints[0], usaas.ClientOptions{})
	sr, err := probe.Stats(context.Background())
	if err != nil {
		return passResult{}, fmt.Errorf("fetching /v1/stats for gauge check: %w", err)
	}
	if err := checkGauges(sr, tot, cfg, pc, embedded); err != nil {
		return passResult{}, err
	}
	if sr.Cluster != nil {
		// The target is a scatter-gather coordinator: its fleet gauges are
		// part of the contract too.
		if err := checkClusterGauges(sr.Cluster, tot, embedded); err != nil {
			return passResult{}, err
		}
	}
	if sr.Ingest != nil {
		res.CommitGroups = sr.Ingest.CommitGroups
		res.MeanGroup = round2(sr.Ingest.MeanGroup)
		res.Fsyncs = sr.Ingest.FsyncCount
		res.FsyncMeanMs = round2(sr.Ingest.FsyncMeanMs)
	}
	for _, ta := range sr.Admission {
		res.Throttled += ta.Dropped
	}
	return res, nil
}

// worker is one closed-loop client: ingest NDJSON session batches, with
// every posts-every'th op a social-posts batch and every query-every'th
// op a stats query. With several endpoints the client prefers the first
// (its round-robin slot) and fails over across the rest.
func worker(ctx context.Context, cfg config, w *workload, endpoints []string, prefix string, id int, deadline time.Time, st *workerStats) error {
	opts := usaas.ClientOptions{Tenant: fmt.Sprintf("tenant-%d", id%cfg.tenants)}
	base := endpoints[0]
	if len(endpoints) > 1 {
		base, opts.Endpoints = "", endpoints
	}
	cl := usaas.NewClientWithOptions(base, opts)
	for n := 0; time.Now().Before(deadline); n++ {
		if ctx.Err() != nil {
			return nil // another worker already failed the pass
		}
		switch {
		case cfg.queryEvery > 0 && n%cfg.queryEvery == cfg.queryEvery-1:
			t0 := time.Now()
			if _, err := cl.Stats(ctx); err != nil {
				return fmt.Errorf("client %d stats query: %w", id, err)
			}
			st.queryLat = append(st.queryLat, time.Since(t0))
			st.numQueries++
		case cfg.postsEvery > 0 && n%cfg.postsEvery == cfg.postsEvery-1:
			batch := w.postBatches[n%len(w.postBatches)]
			t0 := time.Now()
			ack, err := cl.IngestPostsBatch(ctx, fmt.Sprintf("%s-c%d-p%d", prefix, id, n), batch)
			if err != nil {
				return fmt.Errorf("client %d posts batch: %w", id, err)
			}
			st.ingestLat = append(st.ingestLat, time.Since(t0))
			if ack.Duplicate {
				st.dups++
			} else {
				st.batches++
				st.posts += len(batch)
			}
		default:
			wire := w.sessionWires[n%len(w.sessionWires)]
			t0 := time.Now()
			ack, err := cl.IngestSessionsNDJSONBatch(ctx, fmt.Sprintf("%s-c%d-s%d", prefix, id, n), bytes.NewReader(wire))
			if err != nil {
				return fmt.Errorf("client %d sessions batch: %w", id, err)
			}
			st.ingestLat = append(st.ingestLat, time.Since(t0))
			if ack.Duplicate {
				st.dups++
			} else {
				st.batches++
				st.sessions += cfg.batch
			}
		}
	}
	return nil
}

// checkGauges fails the pass when the server's /v1/stats pipeline gauges
// disagree with client-side accounting.
func checkGauges(sr usaas.StatsResponse, tot workerStats, cfg config, pc passConfig, embedded bool) error {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	if embedded {
		// The embedded store started empty, so totals must match exactly.
		if sr.Sessions != tot.sessions {
			fail("store sessions = %d, clients acked %d", sr.Sessions, tot.sessions)
		}
		if sr.Posts != tot.posts {
			fail("store posts = %d, clients acked %d", sr.Posts, tot.posts)
		}
	}
	if embedded && pc.group {
		g := sr.Ingest
		if g == nil {
			fail("group-commit pass but /v1/stats has no ingest gauges")
		} else {
			if g.CommitBatches != uint64(tot.batches) {
				fail("commit_batches = %d, clients acked %d non-duplicate batches", g.CommitBatches, tot.batches)
			}
			if g.CommitGroups == 0 || g.CommitGroups > g.CommitBatches {
				fail("commit_groups = %d out of range (1..%d)", g.CommitGroups, g.CommitBatches)
			}
			var hist uint64
			for _, b := range g.GroupSizeHist {
				hist += b
			}
			if hist != g.CommitGroups {
				fail("group_size_hist sums to %d, want commit_groups %d", hist, g.CommitGroups)
			}
			if g.QueueDepth != 0 {
				fail("queue_depth = %d after all acks returned", g.QueueDepth)
			}
			if g.FsyncCount == 0 {
				fail("fsync_count = 0 under fsync=batch")
			}
		}
	}
	if cfg.admitRate > 0 {
		if len(sr.Admission) == 0 {
			fail("admission enabled but /v1/stats has no admission section")
		}
		var admitted uint64
		for _, ta := range sr.Admission {
			admitted += ta.Admitted
		}
		if admitted < uint64(tot.batches+tot.dups) {
			fail("admission admitted %d < %d acked ingest requests", admitted, tot.batches+tot.dups)
		}
	}
	if len(errs) > 0 {
		return fmt.Errorf("gauge check failed:\n  - %s", joinLines(errs))
	}
	return nil
}

func joinLines(lines []string) string {
	out := lines[0]
	for _, l := range lines[1:] {
		out += "\n  - " + l
	}
	return out
}

// rotate returns endpoints rotated so index i mod len comes first —
// client i's preferred endpoint, with the rest kept for failover.
func rotate(endpoints []string, i int) []string {
	n := len(endpoints)
	if n <= 1 {
		return endpoints
	}
	k := i % n
	out := make([]string, 0, n)
	out = append(out, endpoints[k:]...)
	return append(out, endpoints[:k]...)
}

// checkClusterGauges cross-checks a coordinator's fleet gauges against
// client-side accounting: every shard up, per-shard fan-outs covering the
// acked ingest requests (the coordinator fans each batch to every shard),
// and — on a fault-free embedded run — no shard errors or degraded
// sections.
func checkClusterGauges(cs *usaas.ClusterStats, tot workerStats, strict bool) error {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }
	if len(cs.Shards) == 0 {
		fail("cluster section has no shards")
	}
	ingests := uint64(tot.batches + tot.dups)
	for _, sh := range cs.Shards {
		if !sh.Up {
			fail("shard %s marked down", sh.Name)
		}
		if sh.Fanouts < ingests {
			fail("shard %s fan-outs = %d < %d acked ingest requests", sh.Name, sh.Fanouts, ingests)
		}
		if strict && sh.Errors != 0 {
			fail("shard %s recorded %d errors on a fault-free run", sh.Name, sh.Errors)
		}
	}
	if strict && cs.DegradedSections != 0 {
		fail("degraded_sections = %d on a fault-free run", cs.DegradedSections)
	}
	if len(errs) > 0 {
		return fmt.Errorf("cluster gauge check failed:\n  - %s", joinLines(errs))
	}
	return nil
}

// clusterPass is what one shard-count configuration measured.
type clusterPass struct {
	Shards        int     `json:"shards"`
	BatchesPerSec float64 `json:"batches_per_sec"`
	IngestP50Ms   float64 `json:"ingest_p50_ms"`
	IngestP99Ms   float64 `json:"ingest_p99_ms"`
	AckedBatches  int     `json:"acked_batches"`
	AckedSessions int     `json:"acked_sessions"`
	AckedPosts    int     `json:"acked_posts"`
	ReportColdMs  float64 `json:"report_cold_ms"`
	ReportWarmMs  float64 `json:"report_warm_ms"`
}

// clusterReport is the -cluster mode's -out document (BENCH_cluster.json).
type clusterReport struct {
	Generated    string        `json:"generated"`
	Clients      int           `json:"clients"`
	BatchRecords int           `json:"batch_records"`
	Seed         uint64        `json:"seed"`
	ApplyWorkers int           `json:"apply_workers,omitempty"`
	Passes       []clusterPass `json:"passes"`
}

// runClusterBench embeds one coordinator-fronted cluster per requested
// shard count and runs the closed-loop workload through the coordinator,
// then measures cold and warm /v1/report latency against the freshly
// loaded fleet.
func runClusterBench(cfg config, w *workload) error {
	counts, err := parseShardCounts(cfg.cluster)
	if err != nil {
		return err
	}
	rep := clusterReport{
		Generated:    time.Now().UTC().Format(time.RFC3339),
		Clients:      cfg.clients,
		BatchRecords: cfg.batch,
		Seed:         cfg.seed,
		ApplyWorkers: cfg.applyWorkers,
	}
	for _, n := range counts {
		res, cold, warm, err := runClusterPass(cfg, w, n)
		if err != nil {
			return fmt.Errorf("cluster pass %d shards: %w", n, err)
		}
		rep.Passes = append(rep.Passes, clusterPass{
			Shards:        n,
			BatchesPerSec: res.BatchesPerSec,
			IngestP50Ms:   res.IngestP50Ms,
			IngestP99Ms:   res.IngestP99Ms,
			AckedBatches:  res.AckedBatches,
			AckedSessions: res.AckedSessions,
			AckedPosts:    res.AckedPosts,
			ReportColdMs:  cold,
			ReportWarmMs:  warm,
		})
		fmt.Printf("pass %d-shard      %8.1f batches/sec  p50 %6.2fms  p99 %7.2fms  report cold %7.2fms warm %7.2fms\n",
			n, res.BatchesPerSec, res.IngestP50Ms, res.IngestP99Ms, cold, warm)
	}
	if cfg.out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", cfg.out)
	}
	return nil
}

func runClusterPass(cfg config, w *workload, n int) (passResult, float64, float64, error) {
	base, stop, err := startEmbeddedCluster(cfg, n)
	if err != nil {
		return passResult{}, 0, 0, err
	}
	defer stop()
	res, err := measure(cfg, passConfig{name: fmt.Sprintf("%dshard", n)}, w, base, true)
	if err != nil {
		return passResult{}, 0, 0, err
	}
	cold, warm, err := reportLatency(base)
	if err != nil {
		return passResult{}, 0, 0, err
	}
	return res, cold, warm, nil
}

func parseShardCounts(spec string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-cluster: shard count %q must be a positive integer", part)
		}
		counts = append(counts, n)
	}
	return counts, nil
}

// reportLatency measures /v1/report through the same HTTP path clients
// use: one cold fetch, then the best of five warm repeats.
func reportLatency(base string) (cold, warm float64, err error) {
	fetch := func() (float64, error) {
		t0 := time.Now()
		resp, err := http.Get(base + "/v1/report")
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("/v1/report: %d %.200s", resp.StatusCode, body)
		}
		return ms(time.Since(t0)), nil
	}
	if cold, err = fetch(); err != nil {
		return 0, 0, err
	}
	warm = math.MaxFloat64
	for i := 0; i < 5; i++ {
		v, err := fetch()
		if err != nil {
			return 0, 0, err
		}
		warm = math.Min(warm, v)
	}
	return cold, warm, nil
}

// startEmbeddedCluster runs n durable shard servers plus a scatter-gather
// coordinator in-process, mirroring usaasd -role=coordinator's wiring.
func startEmbeddedCluster(cfg config, n int) (string, func(), error) {
	policy, err := durable.ParseFsyncPolicy(cfg.fsync)
	if err != nil {
		return "", nil, err
	}
	model := leo.NewModel()
	news := newswire.Build(model.Launches(), leo.MajorOutages(), leo.DefaultMilestones())
	var closers []func()
	stop := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
	m := cluster.Map{Version: 1}
	for i := 0; i < n; i++ {
		dir, err := os.MkdirTemp("", "usaasload-shard-*")
		if err != nil {
			stop()
			return "", nil, err
		}
		d, err := usaas.OpenDurableStore(usaas.DurabilityOptions{
			Dir:           dir,
			Fsync:         policy,
			GroupCommit:   cfg.group,
			MaxGroupDelay: cfg.groupDelay,
			ApplyWorkers:  cfg.applyWorkers,
		})
		if err != nil {
			os.RemoveAll(dir)
			stop()
			return "", nil, err
		}
		srv := usaas.NewServer(d.Store, usaas.ServerOptions{Model: model, News: news})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			d.Close()
			os.RemoveAll(dir)
			stop()
			return "", nil, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		closers = append(closers, func() {
			hs.Close()
			d.Close()
			os.RemoveAll(dir)
		})
		m.Shards = append(m.Shards, cluster.Shard{
			Name:      fmt.Sprintf("s%d", i),
			Endpoints: []string{"http://" + ln.Addr().String()},
		})
	}
	coord := cluster.New(m, cluster.Options{Model: model, News: news})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	hs := &http.Server{Handler: coord.Handler()}
	go hs.Serve(ln)
	closers = append(closers, func() { hs.Close() })
	return "http://" + ln.Addr().String(), stop, nil
}

// startEmbedded runs the server in-process on a loopback listener with a
// throwaway durable data directory, mirroring usaasd's wiring.
func startEmbedded(cfg config, pc passConfig) (string, func(), error) {
	dir, err := os.MkdirTemp("", "usaasload-*")
	if err != nil {
		return "", nil, err
	}
	d, err := usaas.OpenDurableStore(usaas.DurabilityOptions{
		Dir:           dir,
		Fsync:         pc.fsync,
		GroupCommit:   pc.group,
		MaxGroupDelay: cfg.groupDelay,
		ApplyWorkers:  cfg.applyWorkers,
	})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	sopts := usaas.ServerOptions{}
	if cfg.admitRate > 0 {
		sopts.Admission = usaas.AdmissionOptions{Rate: cfg.admitRate, Burst: cfg.admitBurst}
	}
	srv := usaas.NewServer(d.Store, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		d.Close()
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	stop := func() {
		hs.Close()
		d.Close()
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return round2(float64(d) / float64(time.Millisecond)) }

func round2(f float64) float64 { return math.Round(f*100) / 100 }
